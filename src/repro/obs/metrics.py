"""Process-local metric primitives.

The paper's algorithms act on *measurements* (HTEE probes a
concurrency ladder, SLAEE watches five-second SLA windows), so the
reproduction carries a first-class metrics layer: counters for
monotonically growing totals, gauges for last-seen values, and
fixed-bucket histograms for distributions (probe scores, macro-step
spans).

Everything here is deliberately plain: no locks (a registry lives in
one process; campaign workers each own a fresh registry and the
parent merges the *snapshots*), no background threads, no clock reads
— so a guarded call site costs one dict lookup plus an addition, and a
disabled call site costs one ``is not None`` check.

Snapshots are pure JSON-safe dicts, which makes them picklable across
:class:`~concurrent.futures.ProcessPoolExecutor` boundaries and
archivable as a ``metrics`` tag in the
:class:`~repro.harness.store.ResultStore` JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_summaries",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (log-ish spacing). The last
#: implicit bucket is +inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0
)


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the running total."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        self.value += amount


@dataclass
class Gauge:
    """A last-written value (e.g. the current concurrency level)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value`` (last write wins)."""
        self.value = value


@dataclass
class Histogram:
    """A fixed-bucket histogram with count/sum (Prometheus-style).

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit overflow bucket catches everything above the last bound.
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample into its bucket (and count/sum)."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use (``registry.counter("x")``),
    so call sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram, created on first use with ``bounds``
        (later callers inherit the creator's bounds)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                bounds=tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
            )
        return instrument

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe copy of every instrument's current state."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, summary: dict) -> None:
        """Fold one :meth:`snapshot` (e.g. from a campaign worker) into
        this registry: counters and histograms add, gauges last-write-win.
        """
        for name, value in summary.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in summary.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in summary.get("histograms", {}).items():
            hist = self.histogram(name, bounds=data["bounds"])
            if list(hist.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ; cannot merge"
                )
            hist.count += data["count"]
            hist.sum += data["sum"]
            hist.counts = [a + b for a, b in zip(hist.counts, data["counts"], strict=True)]


def merge_summaries(summaries: Iterable[dict]) -> dict:
    """Merge several summaries into one (the cross-worker aggregation
    used by parallel campaigns).

    Accepts either bare registry snapshots (``{"counters": ...}``) or
    full observer summaries (``{"metrics": ..., "event_counts": ...,
    "events_total": ...}``); the result mirrors the richer input shape
    — event counts add — so a merged campaign summary renders exactly
    like a single cell's.
    """
    merged = MetricsRegistry()
    event_counts: dict[str, int] = {}
    events_total = 0
    saw_observer_shape = False
    for summary in summaries:
        if "metrics" in summary or "event_counts" in summary:
            saw_observer_shape = True
            merged.merge_snapshot(summary.get("metrics", {}))
            for kind, count in summary.get("event_counts", {}).items():
                event_counts[kind] = event_counts.get(kind, 0) + count
            events_total += int(summary.get("events_total", 0))
        else:
            merged.merge_snapshot(summary)
    if saw_observer_shape:
        return {
            "metrics": merged.snapshot(),
            "event_counts": event_counts,
            "events_total": events_total,
        }
    return merged.snapshot()
