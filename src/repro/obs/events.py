"""Structured transfer-event stream.

Every *decision-relevant* moment of a transfer — a probe window with
its measured throughput/energy/score, an allocation change, a
``reArrangeChannels`` firing, a fast-path macro-step or a fixed-``dt``
fallback stretch, a work-stealing adoption, a server failure or
recovery — is appended to an :class:`EventStream` as a schema-checked
:class:`TransferEvent`.

The schema (:data:`EVENT_SCHEMA`) is enforced at emit time: unknown
kinds and missing detail keys raise immediately, so a malformed
instrumentation call site fails in tests rather than producing an
unparseable archive. Events carry a monotone sequence number in
addition to the simulated time stamp because several events can share
one engine timestamp (e.g. a server failure and the channel closures
it causes) while their causal order still matters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import Optional

__all__ = ["EVENT_SCHEMA", "TransferEvent", "EventStream"]

#: kind -> required detail keys. Extra keys are allowed (forward
#: compatibility); missing required keys are an error.
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    # algorithm-level decisions
    "probe_window": frozenset({"algorithm", "cc", "throughput_bps", "joules", "score"}),
    "allocation_change": frozenset({"allocation"}),
    "rearrange_channels": frozenset({"algorithm", "extra_large"}),
    # engine stepping-mode telemetry
    "macro_step": frozenset({"steps", "span_s"}),
    "fixed_dt_fallback": frozenset({"steps"}),
    # engine structural events (forwarded from the engine event log)
    "channel_reassigned": frozenset({"from_chunk", "to_chunk"}),
    "channel_failed": frozenset({"chunk"}),
    "server_failed": frozenset({"side", "index"}),
    "server_recovered": frozenset({"side", "index"}),
    # service-layer stepping-mode telemetry (repro.service.simulate):
    # one coalesced event per event-driven jump that macro-stepped,
    # mirroring the engine's ``macro_step``.
    "service_macro_step": frozenset({"steps", "span_s", "rounds"}),
    # service-layer job lifecycle (repro.service.simulate)
    "job_submitted": frozenset({"job", "tenant", "sla"}),
    "job_deferred": frozenset({"job", "until", "reason"}),
    "job_admitted": frozenset({"job", "queue_wait_s"}),
    "job_completed": frozenset({"job", "duration_s", "energy_j", "cost_usd"}),
    "deadline_missed": frozenset({"job", "deadline", "completion"}),
    # fleet-layer sharded dispatch (repro.service.fleet)
    "shard_started": frozenset({"shard", "jobs"}),
    "shard_completed": frozenset({"shard", "jobs", "wall_s"}),
    "job_routed": frozenset({"job", "shard"}),
    "work_stolen": frozenset({"job", "from_shard", "to_shard"}),
    # chaos harness (repro.chaos): scenario interventions and SLO
    # verdicts. ``fault`` is the action kind (link_brownout,
    # server_outage, ...); ``detail`` carries its action-specific facts.
    "fault_injected": frozenset({"fault", "detail"}),
    "slo_breach": frozenset({"metric", "value", "budget", "burn"}),
    # topology layer (repro.topo via repro.netsim.multi): placement
    # decisions, change-detected per-bottleneck water-fill results and
    # flows newly throttled below their demand.
    "job_placed": frozenset({"job", "path", "policy"}),
    "bottleneck_allocated": frozenset({"bottleneck", "capacity", "flows", "rate"}),
    "path_congested": frozenset({"job", "path", "bottleneck", "demand", "rate"}),
    # One coalesced event per stretch of consecutive allocation rounds
    # served entirely from cache (frozen busy signature or memo hit) —
    # the topology sibling of ``fixed_dt_fallback`` coalescing.
    "allocation_cached": frozenset({"rounds", "span_s"}),
}


@dataclass(frozen=True)
class TransferEvent:
    """One schema-checked entry of the observability event stream."""

    seq: int
    time: float
    kind: str
    detail: dict

    def to_dict(self) -> dict:
        """The event as a JSON-safe dict."""
        return {"seq": self.seq, "time": self.time, "kind": self.kind,
                "detail": self.detail}


class EventStream:
    """An append-only, schema-validated sequence of transfer events."""

    def __init__(self) -> None:
        self._events: list[TransferEvent] = []

    # -- emission -------------------------------------------------------

    def emit(self, time: float, kind: str, **detail) -> TransferEvent:
        """Append one event, validating it against :data:`EVENT_SCHEMA`."""
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_SCHEMA)}"
            )
        missing = required - detail.keys()
        if missing:
            raise ValueError(
                f"event {kind!r} missing required detail keys: {sorted(missing)}"
            )
        event = TransferEvent(seq=len(self._events), time=time, kind=kind,
                              detail=detail)
        self._events.append(event)
        return event

    def extend(self, other: "EventStream") -> None:
        """Append every event of ``other`` (re-sequenced to stay monotone)."""
        for event in other:
            self._events.append(
                TransferEvent(seq=len(self._events), time=event.time,
                              kind=event.kind, detail=event.detail)
            )

    # -- access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TransferEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    @property
    def events(self) -> list[TransferEvent]:
        return list(self._events)

    def filter(
        self, kind: Optional[str] = None, since: Optional[float] = None
    ) -> list[TransferEvent]:
        """Events matching the given kind and/or minimum time."""
        result = self._events
        if kind is not None:
            result = [e for e in result if e.kind == kind]
        if since is not None:
            result = [e for e in result if e.time >= since]
        return list(result)

    def kinds(self) -> dict[str, int]:
        """Event counts per kind."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        """Re-check the whole stream: schema conformance and monotone
        sequence numbers (raises ``ValueError`` on the first violation)."""
        for i, event in enumerate(self._events):
            if event.seq != i:
                raise ValueError(f"non-monotone event sequence at index {i}")
            required = EVENT_SCHEMA.get(event.kind)
            if required is None:
                raise ValueError(f"unknown event kind {event.kind!r} at seq {i}")
            missing = required - event.detail.keys()
            if missing:
                raise ValueError(
                    f"event {event.kind!r} at seq {i} missing keys: {sorted(missing)}"
                )

    # -- serialization --------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Every event as a JSON-safe dict, in sequence order."""
        return [e.to_dict() for e in self._events]

    def save_jsonl(self, path: Path | str) -> Path:
        """Write the stream as one JSON object per line."""
        path = Path(path)
        with path.open("w") as handle:
            for event in self._events:
                handle.write(json.dumps(event.to_dict()) + "\n")
        return path

    @classmethod
    def from_dicts(cls, records: Iterable[dict]) -> "EventStream":
        """Rebuild (and re-validate) a stream from :meth:`to_dicts` output."""
        stream = cls()
        for record in records:
            stream.emit(float(record["time"]), str(record["kind"]),
                        **dict(record["detail"]))
        return stream
