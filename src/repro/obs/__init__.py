"""Observability: process-local metrics and a structured event stream.

The measurement layer the paper's algorithms deserve: HTEE's probe
ladder, SLAEE's SLA windows, the engine's fast-path/fixed-``dt`` duel,
work stealing and failure handling all report here when an
:class:`Observer` is active (``engine_options(observe=...)``), and
report *nothing* — at one pointer check per site — when it is not.

See DESIGN.md, "Observability", for the event taxonomy and the
overhead guarantees.
"""

from repro.obs.events import EVENT_SCHEMA, EventStream, TransferEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_summaries,
)
from repro.obs.observer import Observer, render_events, render_metrics

__all__ = [
    "EVENT_SCHEMA",
    "EventStream",
    "TransferEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_summaries",
    "Observer",
    "render_events",
    "render_metrics",
]
