"""Evaluation testbed profiles (Figure 1)."""

from repro.testbeds.specs import (
    ALL_TESTBEDS,
    DIDCLAB,
    FUTUREGRID,
    XSEDE,
    Testbed,
    testbed_by_name,
)

__all__ = [
    "ALL_TESTBEDS",
    "DIDCLAB",
    "FUTUREGRID",
    "Testbed",
    "XSEDE",
    "testbed_by_name",
]
