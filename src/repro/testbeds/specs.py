"""Testbed profiles (Figure 1 of the paper).

Three environments, spanning the regimes the algorithms must handle:

* **XSEDE** — Stampede (TACC) <-> Gordon (SDSC): 10 Gbps, 40 ms RTT,
  32 MB max TCP buffer, four dedicated data-transfer nodes per site
  backed by parallel (Lustre) storage. High-BDP WAN: parallelism and
  concurrency both pay.
* **FutureGrid** — Alamo (TACC) <-> Hotel (UChicago): 1 Gbps, 28 ms
  RTT, 32 MB buffer. Low-BDP WAN: the link saturates at moderate
  concurrency.
* **DIDCLAB** — WS9 <-> WS6 workstations on a LAN: 1 Gbps, sub-ms RTT,
  a single-spindle disk at each end. Concurrency actively hurts.

The published constants (bandwidth, RTT, buffer, core counts) are used
verbatim. The remaining host constants (per-stream processing rate,
disk rates, CPU overheads, power-coefficient scale) are *calibrated*
so that the reproduced figures land in the paper's reported ranges;
DESIGN.md and EXPERIMENTS.md document this calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro import units
from repro.datasets.files import Dataset
from repro.datasets.generators import paper_dataset_10g, paper_dataset_1g
from repro.netsim.disk import ParallelDisk, PowerLawDisk, SingleDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.power.coefficients import CoefficientSet

__all__ = ["Testbed", "XSEDE", "FUTUREGRID", "DIDCLAB", "ALL_TESTBEDS", "testbed_by_name"]


@dataclass(frozen=True)
class Testbed:
    """A complete evaluation environment.

    ``coefficients`` is the power-model coefficient set calibrated for
    the testbed's server class; ``sla_reference_concurrency`` is the
    concurrency at which ProMC reaches its maximum throughput there
    (12, 12 and 1 in the paper) — SLA targets are expressed relative to
    that maximum. ``engine_dt`` is the fluid-simulation step.
    """

    #: Not a pytest test class despite the Test* name.
    __test__ = False

    name: str
    path: NetworkPath
    source: EndSystem
    destination: EndSystem
    coefficients: CoefficientSet
    dataset_factory: Callable[[], Dataset]
    concurrency_levels: tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12)
    brute_force_max_concurrency: int = 20
    sla_reference_concurrency: int = 12
    engine_dt: float = 0.25

    def dataset(self) -> Dataset:
        """The paper's evaluation dataset for this network class."""
        return self.dataset_factory()

    def describe(self) -> str:
        """One line of testbed facts (route, link, servers, cores)."""
        return (
            f"{self.name}: {self.source.name} -> {self.destination.name}, "
            f"{self.path.describe()}, "
            f"{self.source.server_count} transfer server(s)/site, "
            f"{self.source.server.cores} cores/server"
        )


def _xsede() -> Testbed:
    server = ServerSpec(
        name="xsede-dtn",
        cores=4,
        tdp_watts=115.0,
        nic_rate=units.gbps(10),
        disk=ParallelDisk(per_accessor_rate=240 * units.MB, array_rate=960 * units.MB),
        per_channel_rate=160 * units.MB,
        core_rate=600 * units.MB,
        channel_cpu_overhead=0.05,
        stream_cpu_overhead=0.02,
        active_overhead=0.10,
        thrash_factor=0.15,
        per_file_overhead=0.012,
    )
    return Testbed(
        name="XSEDE",
        path=NetworkPath(
            bandwidth=units.gbps(10),
            rtt=units.ms(40),
            tcp_buffer=32 * units.MB,
            protocol_efficiency=0.90,
            congestion_knee=22,
            congestion_slope=0.03,
        ),
        source=EndSystem(name="stampede-tacc", server=server, server_count=4),
        destination=EndSystem(name="gordon-sdsc", server=server, server_count=4),
        coefficients=CoefficientSet(disk=0.02, nic=0.03, memory=0.01, scale=1.0),
        dataset_factory=paper_dataset_10g,
        sla_reference_concurrency=12,
    )


def _futuregrid() -> Testbed:
    server = ServerSpec(
        name="futuregrid-node",
        cores=4,
        tdp_watts=95.0,
        nic_rate=units.gbps(1),
        disk=PowerLawDisk(single_rate=62.5 * units.MB, exponent=0.2),
        per_channel_rate=110 * units.MB,
        core_rate=250 * units.MB,
        channel_cpu_overhead=0.05,
        stream_cpu_overhead=0.02,
        active_overhead=0.25,
        thrash_factor=0.15,
        per_file_overhead=0.010,
    )
    return Testbed(
        name="FutureGrid",
        path=NetworkPath(
            bandwidth=units.gbps(1),
            rtt=units.ms(28),
            tcp_buffer=32 * units.MB,
            protocol_efficiency=0.88,
            congestion_knee=8,
            congestion_slope=0.02,
        ),
        source=EndSystem(name="alamo-tacc", server=server, server_count=1),
        destination=EndSystem(name="hotel-uchicago", server=server, server_count=1),
        coefficients=CoefficientSet(scale=0.08),
        dataset_factory=paper_dataset_1g,
        sla_reference_concurrency=12,
    )


def _didclab() -> Testbed:
    server = ServerSpec(
        name="didclab-ws",
        cores=4,
        tdp_watts=80.0,
        nic_rate=units.gbps(1),
        disk=SingleDisk(peak_rate=74 * units.MB, contention_alpha=0.12),
        per_channel_rate=110 * units.MB,
        core_rate=200 * units.MB,
        channel_cpu_overhead=0.05,
        stream_cpu_overhead=0.02,
        active_overhead=0.25,
        thrash_factor=0.15,
        per_file_overhead=0.005,
    )
    return Testbed(
        name="DIDCLAB",
        path=NetworkPath(
            bandwidth=units.gbps(1),
            rtt=units.ms(1),
            tcp_buffer=32 * units.MB,
            protocol_efficiency=0.93,
            congestion_knee=8,
            congestion_slope=0.02,
        ),
        source=EndSystem(name="ws9", server=server, server_count=1),
        destination=EndSystem(name="ws6", server=server, server_count=1),
        coefficients=CoefficientSet(scale=0.09),
        dataset_factory=paper_dataset_1g,
        sla_reference_concurrency=1,
    )


XSEDE = _xsede()
FUTUREGRID = _futuregrid()
DIDCLAB = _didclab()

ALL_TESTBEDS: tuple[Testbed, ...] = (XSEDE, FUTUREGRID, DIDCLAB)


def testbed_by_name(name: str) -> Testbed:
    """Look up a testbed case-insensitively."""
    for testbed in ALL_TESTBEDS:
        if testbed.name.lower() == name.strip().lower():
            return testbed
    raise KeyError(f"unknown testbed {name!r}; known: {[t.name for t in ALL_TESTBEDS]}")
