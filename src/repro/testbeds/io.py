"""Testbed (de)serialization.

Downstream users have their own paths and hosts; this module lets them
describe an environment as JSON instead of code and run every
algorithm, sweep and figure against it::

    {
      "name": "MyLab",
      "path": {"bandwidth_gbps": 40, "rtt_ms": 12, "tcp_buffer_mb": 64},
      "server": {"cores": 16, "tdp_watts": 150, "nic_gbps": 40,
                 "per_channel_rate_mbytes": 300, "core_rate_mbytes": 800,
                 "disk": {"type": "parallel",
                          "per_accessor_mbytes": 400, "array_mbytes": 3000}},
      "server_count": 2,
      "dataset": {"type": "log_uniform", "total_gb": 100,
                  "min_mb": 10, "max_gb": 10}
    }

The CLI accepts a path to such a file anywhere a testbed name is
expected.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Callable

from repro import units
from repro.datasets.files import Dataset
from repro.datasets.generators import SizeBand, banded_dataset, log_uniform_dataset, uniform_dataset
from repro.datasets.presets import WORKLOAD_PRESETS
from repro.netsim.disk import DiskSubsystem, ParallelDisk, PowerLawDisk, SingleDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.power.coefficients import CoefficientSet
from repro.testbeds.specs import Testbed

__all__ = ["testbed_from_dict", "testbed_to_dict", "load_testbed", "save_testbed"]


# ----------------------------------------------------------------------
# disks
# ----------------------------------------------------------------------

def _disk_from_dict(data: dict) -> DiskSubsystem:
    kind = data.get("type")
    if kind == "single":
        return SingleDisk(
            peak_rate=float(data["peak_mbytes"]) * units.MB,
            contention_alpha=float(data.get("contention_alpha", 0.12)),
        )
    if kind == "parallel":
        return ParallelDisk(
            per_accessor_rate=float(data["per_accessor_mbytes"]) * units.MB,
            array_rate=float(data["array_mbytes"]) * units.MB,
        )
    if kind == "powerlaw":
        return PowerLawDisk(
            single_rate=float(data["single_mbytes"]) * units.MB,
            exponent=float(data["exponent"]),
        )
    raise ValueError(f"unknown disk type {kind!r}; known: single, parallel, powerlaw")


def _disk_to_dict(disk: DiskSubsystem) -> dict:
    if isinstance(disk, SingleDisk):
        return {
            "type": "single",
            "peak_mbytes": disk.peak_rate / units.MB,
            "contention_alpha": disk.contention_alpha,
        }
    if isinstance(disk, ParallelDisk):
        return {
            "type": "parallel",
            "per_accessor_mbytes": disk.per_accessor_rate / units.MB,
            "array_mbytes": disk.array_rate / units.MB,
        }
    if isinstance(disk, PowerLawDisk):
        return {
            "type": "powerlaw",
            "single_mbytes": disk.single_rate / units.MB,
            "exponent": disk.exponent,
        }
    raise ValueError(f"cannot serialize disk type {type(disk).__name__}")


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------

def _dataset_factory_from_dict(data: dict) -> Callable[[], Dataset]:
    kind = data.get("type")
    seed = int(data.get("seed", 0))
    if kind == "log_uniform":
        total = float(data["total_gb"]) * units.GB
        lo = float(data["min_mb"]) * units.MB
        hi = float(data["max_gb"]) * units.GB if "max_gb" in data else float(data["max_mb"]) * units.MB
        return lambda: log_uniform_dataset(total, lo, hi, seed=seed)
    if kind == "uniform":
        return lambda: uniform_dataset(
            int(data["file_count"]), int(float(data["file_mb"]) * units.MB)
        )
    if kind == "banded":
        total = float(data["total_gb"]) * units.GB
        bands = tuple(
            SizeBand(float(b["fraction"]), float(b["min_mb"]) * units.MB,
                     float(b["max_mb"]) * units.MB)
            for b in data["bands"]
        )
        return lambda: banded_dataset(total, bands, seed=seed)
    if kind == "preset":
        name = data["name"]
        if name not in WORKLOAD_PRESETS:
            raise ValueError(f"unknown preset {name!r}; known: {sorted(WORKLOAD_PRESETS)}")
        return WORKLOAD_PRESETS[name]
    raise ValueError(
        f"unknown dataset type {kind!r}; known: log_uniform, uniform, banded, preset"
    )


# ----------------------------------------------------------------------
# testbeds
# ----------------------------------------------------------------------

def testbed_from_dict(data: dict) -> Testbed:
    """Build a :class:`Testbed` from a plain dict (see module docs)."""
    path_data = data["path"]
    path = NetworkPath(
        bandwidth=float(path_data["bandwidth_gbps"]) * units.gbps(1),
        rtt=units.ms(float(path_data["rtt_ms"])),
        tcp_buffer=float(path_data["tcp_buffer_mb"]) * units.MB,
        protocol_efficiency=float(path_data.get("protocol_efficiency", 0.93)),
        congestion_knee=int(path_data.get("congestion_knee", 24)),
        congestion_slope=float(path_data.get("congestion_slope", 0.01)),
    )
    server_data = data["server"]
    server = ServerSpec(
        name=server_data.get("name", f"{data['name']}-server"),
        cores=int(server_data["cores"]),
        tdp_watts=float(server_data["tdp_watts"]),
        nic_rate=float(server_data["nic_gbps"]) * units.gbps(1),
        disk=_disk_from_dict(server_data["disk"]),
        per_channel_rate=float(server_data["per_channel_rate_mbytes"]) * units.MB,
        core_rate=float(server_data["core_rate_mbytes"]) * units.MB,
        channel_cpu_overhead=float(server_data.get("channel_cpu_overhead", 0.05)),
        stream_cpu_overhead=float(server_data.get("stream_cpu_overhead", 0.02)),
        active_overhead=float(server_data.get("active_overhead", 0.10)),
        thrash_factor=float(server_data.get("thrash_factor", 0.15)),
        per_file_overhead=float(server_data.get("per_file_overhead", 0.01)),
    )
    count = int(data.get("server_count", 1))
    coeff_data = data.get("coefficients", {})
    coefficients = CoefficientSet(
        memory=float(coeff_data.get("memory", 0.01)),
        disk=float(coeff_data.get("disk", 0.08)),
        nic=float(coeff_data.get("nic", 0.05)),
        scale=float(coeff_data.get("scale", 1.0)),
    )
    return Testbed(
        name=str(data["name"]),
        path=path,
        source=EndSystem(f"{data['name']}-src", server, count),
        destination=EndSystem(f"{data['name']}-dst", server, count),
        coefficients=coefficients,
        dataset_factory=_dataset_factory_from_dict(
            data.get("dataset", {"type": "log_uniform", "total_gb": 10,
                                 "min_mb": 10, "max_gb": 1})
        ),
        concurrency_levels=tuple(data.get("concurrency_levels", (1, 2, 4, 6, 8, 10, 12))),
        brute_force_max_concurrency=int(data.get("brute_force_max_concurrency", 20)),
        sla_reference_concurrency=int(data.get("sla_reference_concurrency", 12)),
        engine_dt=float(data.get("engine_dt", 0.25)),
    )


def testbed_to_dict(testbed: Testbed, dataset: dict | None = None) -> dict:
    """Serialize a testbed's hardware (the dataset spec, which is a
    factory function, must be supplied as a dict or is emitted as a
    generic placeholder)."""
    server = testbed.source.server
    return {
        "name": testbed.name,
        "path": {
            "bandwidth_gbps": units.to_gbps(testbed.path.bandwidth),
            "rtt_ms": units.to_ms(testbed.path.rtt),
            "tcp_buffer_mb": testbed.path.tcp_buffer / units.MB,
            "protocol_efficiency": testbed.path.protocol_efficiency,
            "congestion_knee": testbed.path.congestion_knee,
            "congestion_slope": testbed.path.congestion_slope,
        },
        "server": {
            "name": server.name,
            "cores": server.cores,
            "tdp_watts": server.tdp_watts,
            "nic_gbps": units.to_gbps(server.nic_rate),
            "disk": _disk_to_dict(server.disk),
            "per_channel_rate_mbytes": server.per_channel_rate / units.MB,
            "core_rate_mbytes": server.core_rate / units.MB,
            "channel_cpu_overhead": server.channel_cpu_overhead,
            "stream_cpu_overhead": server.stream_cpu_overhead,
            "active_overhead": server.active_overhead,
            "thrash_factor": server.thrash_factor,
            "per_file_overhead": server.per_file_overhead,
        },
        "server_count": testbed.source.server_count,
        "coefficients": {
            "memory": testbed.coefficients.memory,
            "disk": testbed.coefficients.disk,
            "nic": testbed.coefficients.nic,
            "scale": testbed.coefficients.scale,
        },
        "dataset": dataset
        or {"type": "log_uniform", "total_gb": 10, "min_mb": 10, "max_gb": 1},
        "concurrency_levels": list(testbed.concurrency_levels),
        "brute_force_max_concurrency": testbed.brute_force_max_concurrency,
        "sla_reference_concurrency": testbed.sla_reference_concurrency,
        "engine_dt": testbed.engine_dt,
    }


def load_testbed(path: Path | str) -> Testbed:
    """Load a testbed definition from a JSON file."""
    return testbed_from_dict(json.loads(Path(path).read_text()))


def save_testbed(testbed: Testbed, path: Path | str, dataset: dict | None = None) -> Path:
    """Write a testbed definition to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(testbed_to_dict(testbed, dataset), indent=2) + "\n")
    return path
