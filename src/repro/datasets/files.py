"""File and dataset containers.

A *dataset* in the paper is simply a directory of files of mixed sizes
queued for transfer. The transfer algorithms only ever look at file
sizes (never contents), so :class:`FileInfo` carries a name and a size
and :class:`Dataset` provides the aggregate statistics the algorithms
consume (total size, count, average file size).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro import units

__all__ = ["FileInfo", "Dataset"]


@dataclass(frozen=True, slots=True)
class FileInfo:
    """A single transferable file: a name and a size in bytes."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file size must be >= 0, got {self.size}")


@dataclass(frozen=True)
class Dataset:
    """An immutable collection of files queued for one transfer job."""

    files: tuple[FileInfo, ...]
    name: str = "dataset"

    def __init__(self, files: Iterable[FileInfo], name: str = "dataset") -> None:
        object.__setattr__(self, "files", tuple(files))
        object.__setattr__(self, "name", name)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self) -> Iterator[FileInfo]:
        return iter(self.files)

    def __getitem__(self, index: int) -> FileInfo:
        return self.files[index]

    @property
    def total_size(self) -> int:
        """Sum of all file sizes in bytes."""
        return sum(f.size for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def average_file_size(self) -> float:
        """Mean file size in bytes (0.0 for an empty dataset)."""
        if not self.files:
            return 0.0
        return self.total_size / len(self.files)

    @property
    def min_file_size(self) -> int:
        if not self.files:
            return 0
        return min(f.size for f in self.files)

    @property
    def max_file_size(self) -> int:
        if not self.files:
            return 0
        return max(f.size for f in self.files)

    def sorted_by_size(self) -> "Dataset":
        """A copy with files ordered smallest-first (stable)."""
        return Dataset(sorted(self.files, key=lambda f: (f.size, f.name)), name=self.name)

    def describe(self) -> str:
        """One-line human-readable summary used by the harness."""
        return (
            f"{self.name}: {self.file_count} files, "
            f"{units.to_GB(self.total_size):.2f} GB total, "
            f"sizes {units.to_MB(self.min_file_size):.1f}-"
            f"{units.to_MB(self.max_file_size):.1f} MB, "
            f"avg {units.to_MB(self.average_file_size):.1f} MB"
        )

    @staticmethod
    def from_sizes(sizes: Sequence[int], name: str = "dataset", prefix: str = "file") -> "Dataset":
        """Build a dataset from raw sizes; names are generated."""
        width = max(1, len(str(max(len(sizes) - 1, 0))))
        return Dataset(
            (FileInfo(f"{prefix}{i:0{width}d}", int(s)) for i, s in enumerate(sizes)),
            name=name,
        )
