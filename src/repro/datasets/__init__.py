"""Workload substrate: file/dataset containers and synthetic generators."""

from repro.datasets.files import Dataset, FileInfo
from repro.datasets.presets import (
    WORKLOAD_PRESETS,
    climate_model_dataset,
    genomics_dataset,
    log_shipping_dataset,
    video_archive_dataset,
    vm_image_dataset,
)
from repro.datasets.generators import (
    SizeBand,
    banded_dataset,
    large_files_dataset,
    log_uniform_dataset,
    lognormal_dataset,
    paper_dataset_10g,
    paper_dataset_1g,
    small_files_dataset,
    uniform_dataset,
)

__all__ = [
    "Dataset",
    "FileInfo",
    "SizeBand",
    "WORKLOAD_PRESETS",
    "banded_dataset",
    "climate_model_dataset",
    "genomics_dataset",
    "log_shipping_dataset",
    "video_archive_dataset",
    "vm_image_dataset",
    "log_uniform_dataset",
    "lognormal_dataset",
    "uniform_dataset",
    "paper_dataset_10g",
    "paper_dataset_1g",
    "small_files_dataset",
    "large_files_dataset",
]
