"""Synthetic dataset generators.

The paper evaluates on two mixed-size datasets:

* 10 Gbps networks (XSEDE): **160 GB total, file sizes 3 MB - 20 GB**;
* 1 Gbps networks (FutureGrid, DIDCLAB): **40 GB total, 3 MB - 5 MB...**
  (paper text: "3 MB - 5 GB").

The exact file-size histogram is unpublished, so we generate a
log-uniform mix spanning the published range and rescale it to hit the
published total exactly. Log-uniform spreads files across the small /
medium / large chunk classes the algorithms partition on, which is the
property the evaluation depends on. Generation is deterministic given a
seed.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.datasets.files import Dataset

__all__ = [
    "SizeBand",
    "banded_dataset",
    "log_uniform_dataset",
    "uniform_dataset",
    "lognormal_dataset",
    "paper_dataset_10g",
    "paper_dataset_1g",
    "small_files_dataset",
    "large_files_dataset",
]


def log_uniform_dataset(
    total_size: float,
    min_size: float,
    max_size: float,
    *,
    seed: int = 0,
    name: str = "log-uniform",
) -> Dataset:
    """Files log-uniform in [min_size, max_size] summing to ~total_size.

    Sizes are drawn until their sum reaches the target; the final file is
    clipped into range and the whole set rescaled so the sum matches
    ``total_size`` exactly (to the byte, by adjusting the largest file).
    """
    if not (0 < min_size <= max_size):
        raise ValueError(f"need 0 < min_size <= max_size, got {min_size}, {max_size}")
    if total_size < max_size:
        raise ValueError("total_size must be at least max_size")
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    acc = 0.0
    lo, hi = np.log(min_size), np.log(max_size)
    while acc < total_size:
        s = float(np.exp(rng.uniform(lo, hi)))
        sizes.append(int(s))
        acc += s
    # Rescale multiplicatively, then absorb the integer remainder in the
    # largest file so the dataset total is exact.
    arr = np.array(sizes, dtype=float)
    arr *= total_size / arr.sum()
    arr = np.maximum(arr.astype(np.int64), int(min_size))
    remainder = int(total_size) - int(arr.sum())
    arr[int(np.argmax(arr))] += remainder
    rng.shuffle(arr)
    return Dataset.from_sizes([int(v) for v in arr], name=name)


def uniform_dataset(
    file_count: int,
    file_size: int,
    *,
    name: str = "uniform",
) -> Dataset:
    """``file_count`` identical files of ``file_size`` bytes."""
    if file_count < 0:
        raise ValueError("file_count must be >= 0")
    return Dataset.from_sizes([file_size] * file_count, name=name)


def lognormal_dataset(
    file_count: int,
    median_size: float,
    sigma: float = 1.0,
    *,
    seed: int = 0,
    name: str = "lognormal",
) -> Dataset:
    """A lognormal file-size mix (typical of scientific repositories)."""
    if file_count < 0:
        raise ValueError("file_count must be >= 0")
    rng = np.random.default_rng(seed)
    sizes = rng.lognormal(mean=np.log(median_size), sigma=sigma, size=file_count)
    return Dataset.from_sizes([max(1, int(s)) for s in sizes], name=name)


from dataclasses import dataclass


@dataclass(frozen=True)
class SizeBand:
    """One size band of a mixed dataset: a byte budget spread over
    files drawn log-uniformly from [min_size, max_size]."""

    bytes_fraction: float
    min_size: float
    max_size: float

    def __post_init__(self) -> None:
        if not (0 < self.bytes_fraction <= 1):
            raise ValueError("bytes_fraction must be in (0, 1]")
        if not (0 < self.min_size <= self.max_size):
            raise ValueError("need 0 < min_size <= max_size")


def banded_dataset(
    total_size: float,
    bands: tuple[SizeBand, ...],
    *,
    seed: int = 0,
    name: str = "banded",
) -> Dataset:
    """A mixed dataset with a controlled byte split across size bands.

    The paper's evaluation datasets were constructed so that the small,
    medium and large chunk classes all carry substantial weight (the
    algorithms' per-chunk tuning is only exercised then). This builder
    allocates ``bytes_fraction`` of the total to each band and fills the
    band with log-uniform file sizes.
    """
    if abs(sum(b.bytes_fraction for b in bands) - 1.0) > 1e-9:
        raise ValueError("band fractions must sum to 1")
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    for band in bands:
        budget = total_size * band.bytes_fraction
        acc = 0.0
        lo, hi = np.log(band.min_size), np.log(band.max_size)
        band_sizes: list[float] = []
        while acc < budget:
            s = float(np.exp(rng.uniform(lo, hi)))
            band_sizes.append(s)
            acc += s
        arr = np.array(band_sizes)
        arr *= budget / arr.sum()
        arr = np.maximum(arr.astype(np.int64), 1)
        sizes.extend(int(v) for v in arr)
    remainder = int(total_size) - sum(sizes)
    sizes[int(np.argmax(sizes))] += remainder
    order = rng.permutation(len(sizes))
    return Dataset.from_sizes([sizes[i] for i in order], name=name)


def paper_dataset_10g(seed: int = 42) -> Dataset:
    """The 10 Gbps evaluation dataset: 160 GB, file sizes 3 MB - 20 GB.

    Byte mass is split across the three chunk classes relative to the
    XSEDE BDP (50 MB) so every class is exercised, matching how the
    paper's mixed dataset stresses all parameter regimes.
    """
    return banded_dataset(
        total_size=160 * units.GB,
        bands=(
            SizeBand(0.25, 3 * units.MB, 50 * units.MB),
            SizeBand(0.35, 50 * units.MB, 1 * units.GB),
            SizeBand(0.40, 1 * units.GB, 20 * units.GB),
        ),
        seed=seed,
        name="paper-10g-160GB",
    )


def paper_dataset_1g(seed: int = 42) -> Dataset:
    """The 1 Gbps evaluation dataset: 40 GB, file sizes 3 MB - 5 GB.

    Banded around the ~3.5 MB BDP of the FutureGrid path: a quarter of
    the bytes in small pipelining-sensitive files, the rest across
    medium and large files up to 5 GB.
    """
    return banded_dataset(
        total_size=40 * units.GB,
        bands=(
            SizeBand(0.25, 3 * units.MB, 20 * units.MB),
            SizeBand(0.35, 20 * units.MB, 500 * units.MB),
            SizeBand(0.40, 500 * units.MB, 5 * units.GB),
        ),
        seed=seed,
        name="paper-1g-40GB",
    )


def small_files_dataset(
    total_size: float = 4 * units.GB,
    file_size: float = 1 * units.MB,
    *,
    name: str = "small-files",
) -> Dataset:
    """A many-small-files workload (the pipelining stress case)."""
    count = max(1, int(total_size // file_size))
    return uniform_dataset(count, int(file_size), name=name)


def large_files_dataset(
    total_size: float = 40 * units.GB,
    file_size: float = 4 * units.GB,
    *,
    name: str = "large-files",
) -> Dataset:
    """A few-huge-files workload (the parallelism stress case)."""
    count = max(1, int(total_size // file_size))
    return uniform_dataset(count, int(file_size), name=name)
