"""Domain workload presets.

Realistic file-size mixes from the data-intensive domains the paper's
introduction motivates (scientific computing, media, backup). Each
preset is seeded and deterministic; sizes follow the field's
characteristic shape rather than a generic distribution, so the
algorithms' chunk partitioning is exercised the way production
transfers would exercise it.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.datasets.files import Dataset
from repro.datasets.generators import SizeBand, banded_dataset, uniform_dataset

__all__ = [
    "genomics_dataset",
    "climate_model_dataset",
    "video_archive_dataset",
    "log_shipping_dataset",
    "vm_image_dataset",
    "WORKLOAD_PRESETS",
]


def genomics_dataset(total_size: float = 50 * units.GB, *, seed: int = 11) -> Dataset:
    """A sequencing run: many mid-sized FASTQ/BAM files plus small
    index/metadata sidecars.

    Roughly bimodal: ~15% of bytes in sub-10 MB indexes and QC reports,
    the rest in 0.5-8 GB alignment files.
    """
    return banded_dataset(
        total_size,
        (
            SizeBand(0.15, 100 * units.KB, 10 * units.MB),
            SizeBand(0.85, 500 * units.MB, 8 * units.GB),
        ),
        seed=seed,
        name="genomics",
    )


def climate_model_dataset(total_size: float = 80 * units.GB, *, seed: int = 12) -> Dataset:
    """Climate model output: uniform NetCDF time slices.

    Simulation output is written at a fixed cadence with near-identical
    record sizes — the homogeneous case where partitioning collapses to
    a single chunk.
    """
    slice_size = 250 * units.MB
    count = max(1, int(total_size // slice_size))
    return uniform_dataset(count, int(slice_size), name="climate-netcdf")


def video_archive_dataset(total_size: float = 100 * units.GB, *, seed: int = 13) -> Dataset:
    """A media archive: a few very large masters plus thumbnails and
    preview renditions."""
    return banded_dataset(
        total_size,
        (
            SizeBand(0.05, 50 * units.KB, 5 * units.MB),
            SizeBand(0.15, 50 * units.MB, 500 * units.MB),
            SizeBand(0.80, 5 * units.GB, 25 * units.GB),
        ),
        seed=seed,
        name="video-archive",
    )


def log_shipping_dataset(total_size: float = 10 * units.GB, *, seed: int = 14) -> Dataset:
    """Hourly log shipping: thousands of small compressed segments
    (lognormal around 4 MB) — the pipelining stress case."""
    # draw until the byte budget is met
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    acc = 0
    while acc < total_size:
        s = max(int(50 * units.KB), int(rng.lognormal(np.log(4 * units.MB), 0.8)))
        sizes.append(s)
        acc += s
    ds = Dataset.from_sizes(sizes, name="log-segments")
    return ds


def vm_image_dataset(count: int = 8, image_size: float = 20 * units.GB) -> Dataset:
    """Disaster-recovery replication of VM images: few, huge, uniform —
    the parallelism stress case."""
    return uniform_dataset(count, int(image_size), name="vm-images")


#: Name -> factory, for CLI/example iteration.
WORKLOAD_PRESETS = {
    "genomics": genomics_dataset,
    "climate": climate_model_dataset,
    "video": video_archive_dataset,
    "logs": log_shipping_dataset,
    "vm-images": vm_image_dataset,
}
