"""Testbed network topologies (Figure 9) and path energy accounting.

Each testbed is a chain of network devices between the source and
destination hosts:

* **XSEDE** (Gordon@SDSC -> Stampede@TACC): edge switch, enterprise
  switch, edge router, Internet2 core (metro routers), edge router,
  enterprise switch, edge switch.
* **FutureGrid** (Hotel@UC -> Alamo@TACC): edge switch, metro router,
  Internet2 (metro routers), metro router, edge switch — metro-router
  heavy, which is why FutureGrid shows the largest network share in
  Figure 10.
* **DIDCLAB** (WS9 -> WS6): a single LAN edge switch.

Topologies are expressed as :mod:`networkx` graphs so path enumeration,
device inventories and per-hop accounting stay queryable, and the
transfer path is the shortest source->destination path.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.netenergy.devices import (
    EDGE_ROUTER,
    EDGE_SWITCH,
    ENTERPRISE_SWITCH,
    METRO_ROUTER,
    DeviceType,
)

__all__ = [
    "DEFAULT_MTU_BYTES",
    "NetworkTopology",
    "xsede_topology",
    "futuregrid_topology",
    "didclab_topology",
    "topology_for",
    "packet_count",
]

#: Standard Ethernet MTU; the paper's flows are bulk data, so full-size
#: frames dominate the packet count.
DEFAULT_MTU_BYTES = 1500


def packet_count(total_bytes: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Data packets needed to carry ``total_bytes`` at a given MTU."""
    if total_bytes < 0:
        raise ValueError("total_bytes must be >= 0")
    if mtu_bytes <= 0:
        raise ValueError("mtu_bytes must be > 0")
    return total_bytes / mtu_bytes


@dataclass
class NetworkTopology:
    """A named device graph with a designated transfer path."""

    name: str
    graph: nx.Graph
    source: str
    destination: str

    def transfer_path(self) -> list[str]:
        """Node names along the source->destination shortest path."""
        return nx.shortest_path(self.graph, self.source, self.destination)

    def path_devices(self) -> list[DeviceType]:
        """Device types traversed by the transfer (hosts excluded)."""
        devices = []
        for node in self.transfer_path():
            device = self.graph.nodes[node].get("device")
            if device is not None:
                devices.append(device)
        return devices

    def dynamic_transfer_energy(
        self, total_bytes: float, mtu_bytes: int = DEFAULT_MTU_BYTES
    ) -> float:
        """Load-dependent network joules to carry ``total_bytes`` end to
        end (Eq. 5 summed over every device on the path)."""
        packets = packet_count(total_bytes, mtu_bytes)
        return sum(device.dynamic_energy(packets) for device in self.path_devices())

    def per_device_energy(
        self, total_bytes: float, mtu_bytes: int = DEFAULT_MTU_BYTES
    ) -> list[tuple[str, float]]:
        """(device node name, joules) along the path, for reporting —
        ``total_bytes`` bytes of payload in ``mtu_bytes``-byte packets."""
        packets = packet_count(total_bytes, mtu_bytes)
        rows = []
        for node in self.transfer_path():
            device = self.graph.nodes[node].get("device")
            if device is not None:
                rows.append((node, device.dynamic_energy(packets)))
        return rows

    def describe(self) -> str:
        """The transfer path as 'name: hop -> hop -> ...'."""
        hops = " -> ".join(self.transfer_path())
        return f"{self.name}: {hops}"


def _chain(name: str, source: str, destination: str, devices: list[tuple[str, DeviceType]]) -> NetworkTopology:
    graph = nx.Graph()
    graph.add_node(source, device=None)
    previous = source
    for node_name, device in devices:
        graph.add_node(node_name, device=device)
        graph.add_edge(previous, node_name)
        previous = node_name
    graph.add_node(destination, device=None)
    graph.add_edge(previous, destination)
    return NetworkTopology(name=name, graph=graph, source=source, destination=destination)


def xsede_topology() -> NetworkTopology:
    """Figure 9(a): Gordon (SDSC) <-> Internet2 <-> Stampede (TACC)."""
    return _chain(
        "XSEDE",
        "gordon-sdsc",
        "stampede-tacc",
        [
            ("edge-switch-sdsc", EDGE_SWITCH),
            ("enterprise-switch-sdsc", ENTERPRISE_SWITCH),
            ("edge-router-sdsc", EDGE_ROUTER),
            ("internet2-metro-1", METRO_ROUTER),
            ("internet2-metro-2", METRO_ROUTER),
            ("edge-router-tacc", EDGE_ROUTER),
            ("enterprise-switch-tacc", ENTERPRISE_SWITCH),
            ("edge-switch-tacc", EDGE_SWITCH),
        ],
    )


def futuregrid_topology() -> NetworkTopology:
    """Figure 9(b): Hotel (UChicago) <-> Internet2 <-> Alamo (TACC).

    Metro-router heavy (metro routers at both campus egresses plus the
    Internet2 core), matching the paper's observation that FutureGrid
    has the largest network-side energy share.
    """
    return _chain(
        "FutureGrid",
        "hotel-uc",
        "alamo-tacc",
        [
            ("edge-switch-uc", EDGE_SWITCH),
            ("metro-router-uc", METRO_ROUTER),
            ("internet2-metro-1", METRO_ROUTER),
            ("internet2-metro-2", METRO_ROUTER),
            ("metro-router-tacc", METRO_ROUTER),
            ("edge-switch-tacc", EDGE_SWITCH),
        ],
    )


def didclab_topology() -> NetworkTopology:
    """Figure 9(c): WS9 <-> LAN edge switch <-> WS6."""
    return _chain(
        "DIDCLAB",
        "ws9",
        "ws6",
        [("lan-switch", EDGE_SWITCH)],
    )


def topology_for(testbed_name: str) -> NetworkTopology:
    """Topology lookup by testbed name (case-insensitive)."""
    key = testbed_name.strip().lower()
    factories = {
        "xsede": xsede_topology,
        "futuregrid": futuregrid_topology,
        "didclab": didclab_topology,
    }
    if key not in factories:
        raise KeyError(f"unknown testbed {testbed_name!r}; known: {sorted(factories)}")
    return factories[key]()
