"""Network infrastructure energy substrate (Section 4 of the paper)."""

from repro.netenergy.devices import (
    EDGE_ROUTER,
    EDGE_SWITCH,
    ENTERPRISE_SWITCH,
    METRO_ROUTER,
    TABLE1_DEVICES,
    DeviceType,
)
from repro.netenergy.integration import (
    DeviceEnergyBreakdown,
    integrate_device_energy,
    integrate_path_energy,
)
from repro.netenergy.models import (
    DynamicPowerModel,
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
    transfer_energy,
)
from repro.netenergy.topology import (
    DEFAULT_MTU_BYTES,
    NetworkTopology,
    didclab_topology,
    futuregrid_topology,
    packet_count,
    topology_for,
    xsede_topology,
)

__all__ = [
    "DEFAULT_MTU_BYTES",
    "DeviceEnergyBreakdown",
    "DeviceType",
    "DynamicPowerModel",
    "integrate_device_energy",
    "integrate_path_energy",
    "EDGE_ROUTER",
    "EDGE_SWITCH",
    "ENTERPRISE_SWITCH",
    "LinearPowerModel",
    "METRO_ROUTER",
    "NetworkTopology",
    "NonLinearPowerModel",
    "StateBasedPowerModel",
    "TABLE1_DEVICES",
    "didclab_topology",
    "futuregrid_topology",
    "packet_count",
    "topology_for",
    "transfer_energy",
    "xsede_topology",
]
