"""Ready-made device power-model profiles.

Figure 8's three model *shapes* plus Table 1's per-device magnitudes,
combined: a profile maps every device class to a concrete
:class:`~repro.netenergy.models.DynamicPowerModel` whose dynamic budget
scales with the device's per-packet cost (routers dwarf enterprise
switches) and whose idle floor follows the catalog wattages. Use these
with :func:`~repro.netenergy.integration.integrate_path_energy` to put
a whole transfer trace through a topology under any of the three §4
hypotheses.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.netenergy.devices import EDGE_SWITCH, DeviceType
from repro.netenergy.integration import DeviceEnergyBreakdown, integrate_path_energy
from repro.netenergy.models import (
    DynamicPowerModel,
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
)
from repro.netenergy.topology import NetworkTopology
from repro.netsim.engine import StepRecord

__all__ = ["MODEL_KINDS", "device_model_factory", "path_energy_under_model"]

#: The three Section 4 hypotheses.
MODEL_KINDS = ("non-linear", "linear", "state-based")

#: Dynamic power of the reference edge switch at full rate, watts. Each
#: device's budget scales with its per-packet cost relative to this
#: reference, keeping the Table 1 ordering.
_REFERENCE_DYNAMIC_WATTS = 25.0


def device_model_factory(kind: str) -> Callable[[DeviceType], DynamicPowerModel]:
    """A factory mapping a Table 1 device class to a §4 power model.

    ``kind`` is one of :data:`MODEL_KINDS`. The returned callable suits
    :func:`~repro.netenergy.integration.integrate_path_energy`.
    """
    if kind not in MODEL_KINDS:
        raise KeyError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")

    def build(device: DeviceType) -> DynamicPowerModel:
        scale = device.per_packet_joules / EDGE_SWITCH.per_packet_joules
        dynamic = _REFERENCE_DYNAMIC_WATTS * scale
        if kind == "non-linear":
            return NonLinearPowerModel(idle_watts=device.idle_watts,
                                       max_dynamic_watts=dynamic)
        if kind == "linear":
            return LinearPowerModel(idle_watts=device.idle_watts,
                                    max_dynamic_watts=dynamic)
        return StateBasedPowerModel(idle_watts=device.idle_watts,
                                    max_dynamic_watts=dynamic)

    return build


def path_energy_under_model(
    trace: Sequence[StepRecord],
    topology: NetworkTopology,
    kind: str,
    line_rate: float,
    *,
    dt: float,
    include_idle: bool = False,
) -> list[DeviceEnergyBreakdown]:
    """Per-device energy of one transfer trace under one §4 hypothesis."""
    return integrate_path_energy(
        trace,
        topology,
        device_model_factory(kind),
        line_rate,
        dt=dt,
        include_idle=include_idle,
    )
