"""Network device catalog (Table 1 of the paper).

Per-packet power coefficients for load-dependent operations, from
Vishwanath et al.'s measurement-driven router/switch models:

====================== ========== ============
Device                 P_p (nW)   P_s-f (pW)
====================== ========== ============
Enterprise Ethernet Sw     40         0.42
Edge Ethernet Switch     1571        14.1
Metro IP Router          1375        21.6
Edge IP Router           1707        15.3
====================== ========== ============

``P_p`` is per-packet *processing* energy and ``P_s-f`` per-packet
*store-and-forward* energy (both per packet, i.e. nJ/pJ scale when a
packet transits the device once). Idle power is load-independent and
excluded from the paper's comparison, as Section 4 does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceType",
    "ENTERPRISE_SWITCH",
    "EDGE_SWITCH",
    "METRO_ROUTER",
    "EDGE_ROUTER",
    "TABLE1_DEVICES",
]

_NANO = 1e-9
_PICO = 1e-12


@dataclass(frozen=True, slots=True)
class DeviceType:
    """A network device class with Table 1 per-packet coefficients."""

    name: str
    processing_nw: float
    store_forward_pw: float
    idle_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.processing_nw < 0 or self.store_forward_pw < 0 or self.idle_watts < 0:
            raise ValueError("device coefficients must be >= 0")

    @property
    def per_packet_joules(self) -> float:
        """Load-dependent energy to process + store-forward one packet."""
        return self.processing_nw * _NANO + self.store_forward_pw * _PICO

    def dynamic_energy(self, packet_count: float) -> float:
        """Eq. 5's load-dependent part: ``packetCount * (P_p + P_s-f)``."""
        if packet_count < 0:
            raise ValueError(f"packet_count must be >= 0, got {packet_count}")
        return packet_count * self.per_packet_joules

    def total_energy(self, packet_count: float, duration_s: float) -> float:
        """Eq. 4: idle power over the ``duration_s``-second window plus
        the load-dependent part, in joules."""
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        return self.idle_watts * duration_s + self.dynamic_energy(packet_count)


#: Table 1 rows. Idle wattages are representative catalog values used
#: only when total (Eq. 4) energy is requested; the paper's Figure 10
#: comparison uses the load-dependent part exclusively.
ENTERPRISE_SWITCH = DeviceType("Enterprise Ethernet Switch", 40.0, 0.42, idle_watts=60.0)
EDGE_SWITCH = DeviceType("Edge Ethernet Switch", 1571.0, 14.1, idle_watts=150.0)
METRO_ROUTER = DeviceType("Metro IP Router", 1375.0, 21.6, idle_watts=4100.0)
EDGE_ROUTER = DeviceType("Edge IP Router", 1707.0, 15.3, idle_watts=4550.0)

TABLE1_DEVICES: tuple[DeviceType, ...] = (
    ENTERPRISE_SWITCH,
    EDGE_SWITCH,
    METRO_ROUTER,
    EDGE_ROUTER,
)
