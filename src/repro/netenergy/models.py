"""Dynamic power models for network devices (Section 4, Figure 8).

Vendors publish power at 50% and 100% port utilization and nothing in
between, so the paper evaluates three hypotheses about how dynamic
power scales with traffic rate:

* **non-linear** — power grows sub-linearly (square-root-like) with
  rate, following Mahadevan et al.'s edge-switch measurements. Under
  this model, transferring a fixed dataset *faster* costs *less*
  network energy (the paper's worked example: 4x rate -> 2x power ->
  half the energy).
* **linear** — power proportional to rate (Vishwanath et al.); total
  dynamic energy for a fixed dataset is then rate-invariant.
* **state-based** — power steps up at discrete rate thresholds (link
  rate adaptation); its fitted regression line is linear, so fixed-size
  transfers are again roughly rate-invariant.

All three share a device's maximum dynamic power ``max_dynamic_watts``
at 100% utilization and an idle floor ``idle_watts`` (Eq. 4 separates
the two).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = [
    "DynamicPowerModel",
    "NonLinearPowerModel",
    "LinearPowerModel",
    "StateBasedPowerModel",
    "transfer_energy",
]


class DynamicPowerModel(ABC):
    """Dynamic (load-dependent) device power as a function of rate."""

    idle_watts: float
    max_dynamic_watts: float

    @abstractmethod
    def dynamic_power(self, utilization: float) -> float:
        """Watts above idle at ``utilization`` in [0, 1] of line rate."""

    def power(self, utilization: float) -> float:
        """Total watts (idle + dynamic) at ``utilization``."""
        return self.idle_watts + self.dynamic_power(utilization)

    def _check(self, utilization: float) -> float:
        if not (0.0 <= utilization <= 1.0):
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return utilization


@dataclass
class NonLinearPowerModel(DynamicPowerModel):
    """Sub-linear rate->power: ``P_d = max_dynamic * u**exponent``.

    ``exponent = 0.5`` reproduces the paper's square-root worked
    example exactly (rate x4 => dynamic power x2 => energy halves).
    """

    idle_watts: float
    max_dynamic_watts: float
    exponent: float = 0.5

    def __post_init__(self) -> None:
        if not (0 < self.exponent < 1):
            raise ValueError("exponent must be in (0, 1) for a sub-linear model")

    def dynamic_power(self, utilization: float) -> float:
        u = self._check(utilization)
        return self.max_dynamic_watts * u**self.exponent


@dataclass
class LinearPowerModel(DynamicPowerModel):
    """Linear rate->power: ``P_d = max_dynamic * u``."""

    idle_watts: float
    max_dynamic_watts: float

    def dynamic_power(self, utilization: float) -> float:
        return self.max_dynamic_watts * self._check(utilization)


@dataclass
class StateBasedPowerModel(DynamicPowerModel):
    """Stepwise rate->power: power jumps at discrete rate thresholds.

    ``thresholds`` are the utilization breakpoints (ascending, in
    (0, 1]); crossing the k-th threshold engages fraction ``(k+1)/K``
    of the dynamic budget. Its least-squares fit over [0, 1] is linear,
    which is why the paper treats it as behaving like the linear case.
    """

    idle_watts: float
    max_dynamic_watts: float
    thresholds: Sequence[float] = field(default_factory=lambda: (0.2, 0.4, 0.6, 0.8))

    def __post_init__(self) -> None:
        ts = tuple(self.thresholds)
        if not ts:
            raise ValueError("need at least one threshold")
        if any(not (0 < t <= 1) for t in ts):
            raise ValueError("thresholds must lie in (0, 1]")
        if list(ts) != sorted(set(ts)):
            raise ValueError("thresholds must be strictly ascending")
        self.thresholds = ts

    def dynamic_power(self, utilization: float) -> float:
        u = self._check(utilization)
        # Documented-exact comparison: u == 0.0 is the "no traffic at
        # all" sentinel (idle device, zero dynamic power). Any positive
        # utilization, however tiny, engages the first power state —
        # a tolerance here would misclassify trickle traffic as idle.
        if u == 0.0:  # repro: noqa[RPL003]
            return 0.0
        k = sum(1 for t in self.thresholds if u >= t)
        steps = len(self.thresholds)
        return self.max_dynamic_watts * (k + 1) / (steps + 1)


def transfer_energy(
    model: DynamicPowerModel,
    dataset_bytes: float,
    rate_bytes_per_s: float,
    line_rate_bytes_per_s: float,
    *,
    include_idle: bool = False,
) -> float:
    """Device energy to push ``dataset_bytes`` through at a fixed rate.

    This is the quantity behind the paper's Section 4 argument: under
    the non-linear model, raising the rate lowers the total; under the
    linear model it is invariant.
    """
    if dataset_bytes < 0:
        raise ValueError("dataset_bytes must be >= 0")
    if rate_bytes_per_s <= 0 or line_rate_bytes_per_s <= 0:
        raise ValueError("rates must be > 0")
    if rate_bytes_per_s > line_rate_bytes_per_s:
        raise ValueError("rate cannot exceed line rate")
    duration = dataset_bytes / rate_bytes_per_s
    utilization = rate_bytes_per_s / line_rate_bytes_per_s
    energy = model.dynamic_power(utilization) * duration
    if include_idle:
        energy += model.idle_watts * duration
    return energy
