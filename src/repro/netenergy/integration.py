"""Network-device energy integrated over real transfer dynamics.

Section 4 argues about *rates*: under a sub-linear device power model a
faster transfer costs the network less energy, under a linear model the
total is rate-invariant. The per-packet accounting (Eq. 5) captures the
linear case; this module closes the loop for all three models by
integrating device power over an actual engine trace::

    E_device = sum_steps P_dynamic(u(t)) * dt,   u(t) = throughput(t) / line rate

so a transfer's time-varying throughput (ramp-up, adaptation phases,
drain tails) is reflected in the infrastructure's bill.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.netenergy.models import DynamicPowerModel
from repro.netenergy.topology import NetworkTopology
from repro.netsim.engine import StepRecord

__all__ = ["DeviceEnergyBreakdown", "integrate_device_energy", "integrate_path_energy"]


@dataclass(frozen=True)
class DeviceEnergyBreakdown:
    """Energy of one device over one transfer trace."""

    device_name: str
    dynamic_joules: float
    idle_joules: float

    @property
    def total_joules(self) -> float:
        return self.dynamic_joules + self.idle_joules


def integrate_device_energy(
    trace: Sequence[StepRecord],
    model: DynamicPowerModel,
    line_rate: float,
    *,
    dt: float,
    include_idle: bool = False,
) -> float:
    """Dynamic (optionally + idle) joules of one device over ``trace``.

    ``line_rate`` is the device's port rate in bytes/s; utilization is
    clamped at 1.0 (bursts above line rate are an artifact of fluid
    stepping).
    """
    if line_rate <= 0:
        raise ValueError("line_rate must be > 0")
    if dt <= 0:
        raise ValueError("dt must be > 0")
    dynamic = 0.0
    for record in trace:
        utilization = min(1.0, max(0.0, record.throughput / line_rate))
        dynamic += model.dynamic_power(utilization) * dt
    if include_idle:
        dynamic += model.idle_watts * len(trace) * dt
    return dynamic


def integrate_path_energy(
    trace: Sequence[StepRecord],
    topology: NetworkTopology,
    model_factory,
    line_rate: float,
    *,
    dt: float,
    include_idle: bool = False,
) -> list[DeviceEnergyBreakdown]:
    """Per-device energy along a topology's transfer path.

    ``model_factory(device)`` builds a :class:`DynamicPowerModel` for
    each Table 1 :class:`~repro.netenergy.devices.DeviceType` — e.g.
    scaling ``max_dynamic_watts`` with the device's per-packet cost so
    routers dominate switches, as they do in the paper's Figure 10.
    """
    breakdowns = []
    for node in topology.transfer_path():
        device = topology.graph.nodes[node].get("device")
        if device is None:
            continue
        model = model_factory(device)
        dynamic = integrate_device_energy(
            trace, model, line_rate, dt=dt, include_idle=False
        )
        idle = model.idle_watts * len(trace) * dt if include_idle else 0.0
        breakdowns.append(
            DeviceEnergyBreakdown(
                device_name=node, dynamic_joules=dynamic, idle_joules=idle
            )
        )
    return breakdowns
