"""Multiple transfers sharing one path.

A transfer service rarely moves one dataset at a time. This module runs
several :class:`TransferEngine` instances in lock-step against the same
path: at every step each job sees every *other* active job's TCP
streams as competing traffic, so the link is divided per-stream across
jobs exactly as it is within one (TCP fairness), and per-job energy is
accounted separately.

It deliberately supports **statically planned** jobs (a list of
``ChunkPlan``\\ s — what MinE, ProMC, SC, GUC produce); the adaptive
algorithms own their engine's control loop and are exercised against
cross-traffic through ``engine_options(background_traffic=...)``
instead.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.netsim.channel import Channel
from repro.netsim.engine import (
    ACCUM_VECTOR_MIN,
    Binding,
    ChunkPlan,
    TransferEngine,
    accumulate_times,
)
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed
from repro.topo.alloc import (
    AllocationResult,
    FlowDemand,
    alloc_cache_info,
    refill,
)
from repro.topo.core import Path, Topology, build_topology
from repro.topo.placement import Placer
from repro.units import Bytes, BytesPerSecond, Joules, Seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer

__all__ = ["JobRecord", "MultiTransferSimulator", "TransferTimeout"]

#: Coupled sets at least this wide take the batched array path through
#: :meth:`MultiTransferSimulator.run_until` rounds (stream counts,
#: refill check and energy deltas as single array ops). Narrow sets —
#: the common service case of a handful of concurrent jobs — keep the
#: scalar path, whose per-round overhead is lower. Both paths are
#: bit-equal.
_VECTOR_MIN_ENGINES = 8


class TransferTimeout(RuntimeError):
    """``run(max_time=...)`` expired with unfinished jobs.

    Raising (rather than returning truncated records as if they were
    complete) keeps service-level deadline accounting honest: a job
    whose completion time is unknown must not be mistaken for one that
    met — or missed — its deadline.
    """


@dataclass
class JobRecord:
    """Lifecycle and cost of one job in a multi-transfer run.

    Times are simulated seconds, sizes bytes, energy joules.
    """

    name: str
    arrival_time: Seconds
    total_bytes: Bytes
    start_time: Optional[Seconds] = None
    completion_time: Optional[Seconds] = None
    energy_joules: Joules = 0.0
    #: Set when a ``run`` hit its ``max_time`` before this job finished
    #: (only reachable with ``on_timeout="warn"``; the default raises).
    truncated: bool = False

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def turnaround_s(self) -> Seconds:
        """Arrival-to-completion time in seconds (raises if unfinished)."""
        if self.completion_time is None:
            raise ValueError(f"job {self.name!r} has not finished")
        return self.completion_time - self.arrival_time

    @property
    def throughput(self) -> BytesPerSecond:
        """Mean rate while running, bytes/s."""
        if self.completion_time is None or self.start_time is None:
            return 0.0
        elapsed = self.completion_time - self.start_time
        return self.total_bytes / elapsed if elapsed > 0 else 0.0


class MultiTransferSimulator:
    """Lock-step coordinator for jobs sharing a testbed's path.

    ``max_concurrent_jobs`` models the provider's admission policy:
    arrived jobs beyond the cap queue (FIFO by arrival, ties by
    submission order) until a slot frees up.
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        max_concurrent_jobs: Optional[int] = None,
        binding: Binding = Binding.PACK,
        topology: Optional[Union[str, Topology]] = None,
        placement: str = "least-congested",
        placement_seed: int = 0,
        observer: Optional["Observer"] = None,
    ) -> None:
        if max_concurrent_jobs is not None and max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        self.testbed = testbed
        self.max_concurrent_jobs = max_concurrent_jobs
        self.binding = binding
        self.dt = testbed.engine_dt
        self.time = 0.0
        self.observer = observer
        #: Optional shared network: a spec string (``"leaf-spine:s=2,l=4"``)
        #: is built against the testbed path's bandwidth; a
        #: :class:`~repro.topo.core.Topology` is used as-is. With a
        #: topology attached every admitted job is placed on a path by
        #: the :class:`~repro.topo.placement.Placer` and each round's
        #: rates are capped by the network-wide water-fill
        #: (:meth:`_impose_caps`).
        if isinstance(topology, str):
            topology = build_topology(
                topology, bandwidth=testbed.path.bandwidth
            )
        self.topology = topology
        self._placer: Optional[Placer] = (
            None
            if topology is None
            else Placer(topology, placement, seed=placement_seed)
        )
        #: job name -> the Path the placer chose at admission.
        self._flow_paths: dict[str, Path] = {}
        #: Change-detection state for the topology observer events.
        self._congested_flows: set[str] = set()
        self._last_loads: dict[str, float] = {}
        #: Round-level allocation reuse (DESIGN.md §5h): the signature
        #: the imposed caps were computed under — ``(topology version,
        #: per-flow (name, path, demand) tuple)`` — plus the imposed
        #: :class:`AllocationResult` itself so the next changed round
        #: can :func:`~repro.topo.alloc.refill` instead of re-solving.
        self._alloc_sig: Optional[tuple] = None
        self._alloc_prev: Optional[AllocationResult] = None
        self._alloc_version = -1
        #: Coalesced ``allocation_cached`` stretch (start time and
        #: cache-served round count), flushed on the first non-cached
        #: round and by :meth:`flush_topo_events`.
        self._cached_span_start: Optional[Seconds] = None
        self._cached_span_rounds = 0
        self._jobs: list[tuple[JobRecord, TransferEngine]] = []
        self._names: set[str] = set()
        # Incremental indexes: ``step``/``run_until`` never scan the
        # full submission list. ``_unstarted`` holds jobs in arrival
        # order (lazily re-sorted only if a submission arrives out of
        # order), ``_active`` the admitted-but-unfinished jobs.
        self._unstarted: deque[tuple[JobRecord, TransferEngine]] = deque()
        self._unstarted_dirty = False
        self._active: list[tuple[JobRecord, TransferEngine]] = []
        #: Chaos state shared by every job on this path. ``_link_scale``
        #: and ``_ambient_streams`` are constant between injection calls
        #: (the fast-path contract); ``_site_down`` maps a failed
        #: server to its recovery time *on this simulator's clock* so
        #: jobs admitted mid-outage inherit the remaining downtime.
        self._link_scale = 1.0
        #: Set once a brownout has ever been injected: newly submitted
        #: engines then inherit the current factor. An explicit flag —
        #: not an exact-float compare against the 1.0 sentinel — so a
        #: restore to full capacity still propagates cleanly.
        self._link_scale_active = False
        self._ambient_streams = 0.0
        self._site_down: dict[tuple[str, int], Seconds] = {}
        #: Fast-path accounting (:meth:`run_until` only): macro rounds
        #: taken, ``dt`` steps they covered, and single-step rounds.
        self.macro_rounds = 0
        self.macro_stepped_dts = 0
        self.fixed_rounds = 0

    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        plans: Sequence[ChunkPlan],
        *,
        arrival_time: Seconds = 0.0,
    ) -> JobRecord:
        """Queue a statically planned job."""
        if arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if name in self._names:
            raise ValueError(f"duplicate job name {name!r}")
        model = FineGrainedPowerModel(self.testbed.coefficients)
        engine = TransferEngine(
            self.testbed.path,
            self.testbed.source,
            self.testbed.destination,
            model.power,
            dt=self.dt,
            binding=self.binding,
            work_stealing=True,
        )
        record = JobRecord(
            name=name,
            arrival_time=arrival_time,
            total_bytes=float(sum(p.total_size for p in plans)),
        )
        # chunks registered up front; channels open when the job starts
        for plan in plans:
            engine.submit_chunk(plan)
        if self._link_scale_active:
            # a brownout was injected at some point; propagate the
            # current factor (a restore back to 1.0 is a no-op on the
            # engine side)
            engine.set_link_scale(self._link_scale)
        self._jobs.append((record, engine))
        self._names.add(name)
        if self._unstarted and arrival_time < self._unstarted[-1][0].arrival_time:
            self._unstarted_dirty = True
        self._unstarted.append((record, engine))
        return record

    # ------------------------------------------------------------------

    def _running(self) -> list[tuple[JobRecord, TransferEngine]]:
        active = self._active
        if any(record.finished for record, _ in active):
            self._active = active = [
                pair for pair in active if not pair[0].finished
            ]
        return active

    def _sort_unstarted(self) -> None:
        """Restore arrival order after an out-of-order submission.

        The sort is stable, so ties keep submission order — the same
        FIFO tie-break the service contract promises.
        """
        if self._unstarted_dirty:
            self._unstarted = deque(
                sorted(self._unstarted, key=lambda pair: pair[0].arrival_time)
            )
            self._unstarted_dirty = False

    def _admit_jobs(self) -> None:
        if not self._unstarted:
            return
        self._sort_unstarted()
        slots = (
            self.max_concurrent_jobs - len(self._running())
            if self.max_concurrent_jobs is not None
            else None
        )
        # FIFO by arrival; ties resolved by submission order (the
        # arrival index is kept stable-sorted).
        while (
            self._unstarted
            and self._unstarted[0][0].arrival_time <= self.time + 1e-12
        ):
            if slots is not None and slots <= 0:
                break
            record, engine = self._unstarted.popleft()
            record.start_time = self.time
            if self._placer is not None:
                # one route per job, chosen at admission — admission
                # order is FIFO and identical in the fast and grid
                # drivers, so a fixed placer seed places identically
                path = self._placer.place(record.name)
                self._flow_paths[record.name] = path
                if self.observer is not None:
                    self.observer.job_placed(
                        self.time, record.name, path.name,
                        self._placer.policy,
                    )
            self._inherit_outages(engine)
            engine.admit_pending()
            self._active.append((record, engine))
            if slots is not None:
                slots -= 1

    def _inherit_outages(self, engine: TransferEngine) -> None:
        """Propagate in-force server outages to a job being admitted.

        The engine's clock starts at zero on admission, so the shared
        recovery time is translated into the engine-local remaining
        downtime. Expired outages are purged as a side effect.
        """
        if not self._site_down:
            return
        for key, until in list(self._site_down.items()):
            if until <= self.time + 1e-12:
                del self._site_down[key]
                continue
            engine.mark_server_down(
                key[0], key[1], until=(until - self.time) + engine.time
            )

    @staticmethod
    def _busy_streams(engine: TransferEngine) -> int:
        return sum(c.parallelism for c in engine.channels if c.busy)

    def _release_flow(self, record: JobRecord) -> None:
        """Free a completed job's route (placer load bookkeeping)."""
        if self._placer is None:
            return
        path = self._flow_paths.pop(record.name, None)
        if path is not None:
            self._placer.release(path)
        self._congested_flows.discard(record.name)

    def _backgrounds(
        self,
        running: list[tuple[JobRecord, TransferEngine]],
        counts: list[int],
        total: int,
        counts_arr: Optional[np.ndarray] = None,
    ) -> list[float]:
        """Competing stream count each running engine sees this round.

        Without a topology every job shares one link, so a job competes
        with the total of every *other* job's streams plus the ambient
        load. With a topology a job only competes with the streams that
        actually cross a bottleneck on *its* path — the count is the
        worst such hop. On a single shared bottleneck the worst hop
        carries everyone, so the topology-aware count reduces exactly
        to ``total - own + ambient`` — the byte-identity the single-link
        topology tests pin down.
        """
        ambient = self._ambient_streams
        if self._placer is None:
            if counts_arr is not None:
                # batched array pass; bit-equal to the scalar arithmetic
                return (total - counts_arr + ambient).tolist()
            return [total - count + ambient for count in counts]
        hop_streams: dict[str, int] = {}
        for (record, _engine), count in zip(running, counts):
            path = self._flow_paths.get(record.name)
            if path is None:
                continue
            for hop in path.bottlenecks:
                hop_streams[hop] = hop_streams.get(hop, 0) + count
        backgrounds: list[float] = []
        for (record, _engine), count in zip(running, counts):
            path = self._flow_paths.get(record.name)
            if path is None:
                backgrounds.append(total - count + ambient)
                continue
            worst = max(hop_streams[hop] for hop in path.bottlenecks)
            backgrounds.append(worst - count + ambient)
        return backgrounds

    def _note_alloc_round(
        self, *, hits: int, misses: int, incremental: int
    ) -> None:
        """Account one allocation round's cache traffic and extend (or
        flush) the coalesced ``allocation_cached`` stretch."""
        if self.observer is not None:
            self.observer.alloc_cache(hits, misses, incremental)
        if hits and not misses:
            if self._cached_span_start is None:
                self._cached_span_start = self.time
            self._cached_span_rounds += 1
        else:
            self.flush_topo_events()

    def flush_topo_events(self) -> None:
        """Emit the pending coalesced ``allocation_cached`` stretch.

        Called on the first non-cached round and by the drivers at the
        end of a run, mirroring the engine's coalesced
        ``fixed_dt_fallback`` contract: one event per stretch, so the
        stream stays bounded for fleet-scale topology days.
        """
        if self._cached_span_start is None:
            return
        if self.observer is not None:
            self.observer.allocation_cached(
                self._cached_span_start,
                self._cached_span_rounds,
                self.time - self._cached_span_start,
            )
        self._cached_span_start = None
        self._cached_span_rounds = 0

    def _impose_caps(
        self, running: list[tuple[JobRecord, TransferEngine]]
    ) -> None:
        """Impose each flow's network-wide share as an engine rate cap.

        The psim round: every running flow registers its *uncapped*
        demand (what its busy channels would jointly carry) on the
        bottlenecks along its placed path; the topology water-fills to
        the max-min fixed point; each congested flow's engine is capped
        at its share, demand-limited flows are uncapped. Called at the
        same point of every round in both drivers — after backgrounds
        are set, before work assignment — so the caps are identical at
        identical grid times. Within a macro span the busy signature
        and the peer stream counts are frozen (``stable_steps`` /
        ``count_stable_steps``), hence so are the demands and the caps:
        freezing them across the span is exact, not approximate.

        Rounds are keyed on ``(topology version, per-flow (name, path,
        demand))``. An unchanged signature skips the allocator
        entirely — the caps already imposed *are* the fixed point for
        these inputs (caps are a pure function of demands, paths and
        capacities, and nothing else touches
        ``engine.set_capacity_cap``) — so a stretch of frozen rounds
        never re-allocates at all. A changed signature re-solves
        through :func:`~repro.topo.alloc.refill`, splicing untouched
        interference components from the previous round's result.
        """
        if self._placer is None:
            return
        flows: list[FlowDemand] = []
        members: list[tuple[JobRecord, TransferEngine, Path]] = []
        for record, engine in running:
            path = self._flow_paths.get(record.name)
            if path is None:
                continue
            demand = engine.demand_rate()
            if demand <= 0.0:
                # freshly admitted: channels open but unassigned until
                # the first step's work assignment
                engine.set_capacity_cap(None)
                continue
            flows.append(FlowDemand(record.name, path.bottlenecks, demand))
            members.append((record, engine, path))
        if not flows:
            # Any previously imposed caps were reset above (or their
            # flows completed): the next non-empty round must re-impose
            # from scratch, not signature-skip against stale caps.
            self._alloc_sig = None
            self._alloc_prev = None
            return
        assert self.topology is not None
        version = self.topology.version
        sig = (version, tuple((f.flow, f.path, f.demand) for f in flows))
        if sig == self._alloc_sig:
            self._note_alloc_round(hits=1, misses=0, incremental=0)
            return
        prev = self._alloc_prev if self._alloc_version == version else None
        info0 = alloc_cache_info()
        result = refill(self.topology, flows, prev)
        info1 = alloc_cache_info()
        hits = info1.hits - info0.hits
        misses = info1.misses - info0.misses
        served = hits > 0 and misses == 0
        self._note_alloc_round(
            hits=1 if served else 0,
            misses=0 if served else 1,
            incremental=1 if prev is not None and not served else 0,
        )
        self._alloc_sig = sig
        self._alloc_prev = result
        self._alloc_version = version
        observer = self.observer
        for record, engine, path in members:
            name = record.name
            bound = result.binding[name]
            if bound is None:
                engine.set_capacity_cap(None)
                self._congested_flows.discard(name)
                continue
            engine.set_capacity_cap(result.rates[name])
            if name not in self._congested_flows:
                self._congested_flows.add(name)
                if observer is not None:
                    observer.path_congested(
                        self.time, name, path.name, bound,
                        result.demands[name], result.rates[name],
                    )
        if observer is not None:
            for hop, load in result.bottleneck_load.items():
                last = self._last_loads.get(hop)
                if last is None or abs(load - last) > 1e-6 * max(load, 1.0):
                    self._last_loads[hop] = load
                    observer.bottleneck_allocated(
                        self.time, hop, self.topology.capacity(hop),
                        result.bottleneck_flows[hop], load,
                    )

    def _would_bind(
        self, running: list[tuple[JobRecord, TransferEngine]]
    ) -> bool:
        """Would the *current* (post-assignment) demands congest any
        flow? The fast path's escape hatch: a refill round whose new
        demands still clear every bottleneck needs no exact step, since
        the interior grid steps would compute the same ``None`` caps
        the span froze.

        Re-solves through :func:`~repro.topo.alloc.refill` seeded with
        the round's :meth:`_impose_caps` result, so only the flows
        whose demand the work assignment actually moved (and their
        interference components) are re-filled — the refill
        bit-identity contract makes the binding decision identical to
        a from-scratch ``allocate``. Read-only: the imposed result and
        signature are left untouched (they describe the
        *pre*-assignment demands the caps were computed for).
        """
        flows: list[FlowDemand] = []
        for record, engine in running:
            path = self._flow_paths.get(record.name)
            if path is None:
                continue
            demand = engine.demand_rate()
            if demand <= 0.0:
                continue
            flows.append(FlowDemand(record.name, path.bottlenecks, demand))
        if not flows:
            return False
        assert self.topology is not None
        prev = (
            self._alloc_prev
            if self._alloc_version == self.topology.version
            else None
        )
        result = refill(self.topology, flows, prev)
        return any(hop is not None for hop in result.binding.values())

    # ------------------------------------------------------------------
    # fault injection (chaos surface)
    #
    # Every injector mutates shared state that is *constant between
    # calls*, and callers (the service drivers) never macro-step across
    # an injection time — together that is the fast-path invalidation
    # contract: a frozen rate vector computed after an injection is
    # valid for exactly the same span the fixed-dt loop would observe,
    # so `run_until` stays bit-consistent with grid stepping under
    # chaos (see DESIGN.md §5g).
    # ------------------------------------------------------------------

    @property
    def link_scale(self) -> float:
        """Current brownout factor applied to the shared link."""
        return self._link_scale

    def set_link_scale(self, scale: float) -> None:
        """Scale the path's aggregate goodput for every job (brownout).

        Applies to all submitted engines — running or still queued —
        and to engines submitted later. Each engine invalidates its
        allocation memo on the change.
        """
        if scale <= 0:
            raise ValueError(f"link scale must be > 0, got {scale}")
        self._link_scale = float(scale)
        self._link_scale_active = True
        if self.topology is not None:
            # a path-wide brownout dims every bottleneck too; keeping
            # the topology in lock-step with the engines preserves the
            # single-link no-bind invariant under scale changes
            self.topology.set_global_scale(self._link_scale)
        for _record, engine in self._jobs:
            engine.set_link_scale(self._link_scale)

    def scale_bottleneck(self, name: str, scale: float) -> float:
        """Scale one named bottleneck's capacity (targeted brownout).

        The topology-aware sibling of :meth:`set_link_scale`: only
        flows whose placed path crosses ``name`` feel it, through the
        next round's water-fill. Engine rate caps carry the bottleneck
        capacities in their allocation-memo signatures, so no cache
        invalidation is needed — the next ``_impose_caps`` simply
        computes (and imposes) the new shares. Returns the bottleneck's
        new effective capacity in bytes/s.
        """
        if self.topology is None:
            raise ValueError(
                "scale_bottleneck requires a topology-backed simulator "
                "(pass topology=... at construction)"
            )
        return self.topology.scale_bottleneck(name, scale)

    @property
    def ambient_streams(self) -> float:
        """Background TCP streams beyond the coordinated jobs' own."""
        return self._ambient_streams

    def set_ambient_streams(self, streams: float) -> None:
        """Add a constant ambient cross-traffic load to the path.

        Every running job sees ``streams`` competing TCP streams *in
        addition to* the other jobs' — a background-traffic surge that
        squeezes all of them at once.
        """
        if streams < 0:
            raise ValueError("ambient stream count must be >= 0")
        self._ambient_streams = float(streams)

    @property
    def site_down(self) -> dict[tuple[str, int], Seconds]:
        """Injected server outages still in force (recovery on this
        simulator's clock)."""
        return {
            key: until
            for key, until in self._site_down.items()
            if until > self.time + 1e-12
        }

    def inject_server_failure(
        self,
        side: str,
        index: int,
        *,
        downtime: Seconds,
        restart_files: bool = False,
    ) -> int:
        """Crash one transfer server for every job sharing the path.

        Running jobs fail (and immediately reconnect on survivors —
        :meth:`TransferEngine.fail_server` with ``reopen=True``); jobs
        admitted during the outage inherit the remaining downtime via
        :meth:`TransferEngine.mark_server_down`. Returns the number of
        channels that failed across all running jobs. Refuses to take
        down the last available server on a side.
        """
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        system = (
            self.testbed.source if side == "src" else self.testbed.destination
        )
        if not (0 <= index < system.server_count):
            raise ValueError(f"server index {index} out of range")
        if downtime <= 0:
            raise ValueError("downtime must be > 0")
        until = self.time + downtime
        down_now = {
            key
            for key, t in self._site_down.items()
            if key[0] == side and t > self.time + 1e-12
        }
        down_now.add((side, index))
        if len(down_now) >= system.server_count:
            raise RuntimeError("cannot fail the last available server")
        prior = self._site_down.get((side, index))
        self._site_down[(side, index)] = (
            until if prior is None else max(prior, until)
        )
        failed = 0
        for _record, engine in self._running():
            failed += engine.fail_server(
                side, index, downtime=downtime, restart_files=restart_files
            )
        return failed

    def inject_channel_failures(
        self, *, per_job: int = 1, restart_file: bool = False
    ) -> int:
        """Kill up to ``per_job`` open channels of every running job.

        Victims are taken in channel-opening order (deterministic under
        a fixed seed/schedule). A job losing *all* its channels is
        stranded — requeued files, no transport — until
        :meth:`readmit_stranded` (or engine-side recovery) re-opens
        channels for it. Returns the total number of channels killed.
        """
        if per_job < 1:
            raise ValueError("per_job must be >= 1")
        failed = 0
        for _record, engine in self._running():
            for channel in engine.channels[:per_job]:
                engine.fail_channel(channel, restart_file=restart_file)
                failed += 1
        return failed

    def readmit_stranded(self) -> list[str]:
        """Re-open planned channels for running jobs left with none.

        The service's recovery/rerouting hook: after a fault strands an
        admitted job (every channel cut), re-admission restores each
        chunk's planned concurrency on the currently-available servers
        — the transport-level equivalent of re-routing the job. Jobs
        with any surviving channel are left alone (work stealing
        already covers intra-job rebalancing). Returns the re-admitted
        job names in admission order.
        """
        readmitted: list[str] = []
        for record, engine in self._running():
            if engine.channels or record.finished:
                continue
            for name, state in engine.chunks.items():
                engine.set_chunk_channels(name, state.plan.params.concurrency)
            readmitted.append(record.name)
        return readmitted

    def step(self) -> None:
        """Advance every running job one shared time step."""
        self._admit_jobs()
        running = self._running()
        counts = [self._busy_streams(engine) for _, engine in running]
        backgrounds = self._backgrounds(running, counts, sum(counts))
        for (_record, engine), background in zip(running, backgrounds):
            engine.set_background_streams(background)
        self._impose_caps(running)
        for record, engine in running:
            before_energy = engine.total_energy
            engine.step()
            record.energy_joules += engine.total_energy - before_energy
            if engine.finished and not record.finished:
                record.completion_time = self.time + self.dt
                self._release_flow(record)
        self.time += self.dt

    def run_until(self, horizon: Seconds) -> list[JobRecord]:
        """Advance shared time toward ``horizon``, macro-stepping when
        safe, and return the jobs that completed — stopping at the
        first round boundary with a completion.

        Numerically equivalent to calling :meth:`step` in a loop while
        ``time < horizon - 1e-9``: every *round* freezes each running
        engine's pre-assignment busy-stream count exactly as one grid
        step does, then advances all engines ``k`` whole ``dt`` steps
        at once, with ``k`` bounded so that

        * no engine's own event horizon is crossed
          (:meth:`TransferEngine.stable_steps` — the PR-1 fast path);
        * no *other* engine could have observed this engine's stream
          count change mid-span
          (:meth:`TransferEngine.count_stable_steps`; only checked
          when two or more jobs run — a lone job sees zero background
          streams regardless);
        * work assignment did not just change a busy parallelism the
          peers sampled (refill check → single exact step);
        * no queued arrival becomes admittable mid-span.

        Time advances by the same repeated ``+= dt`` additions as the
        grid loop (``dt`` is a power of two), so round boundaries and
        completion timestamps are bit-equal to grid stepping. The
        method returns at the first completion so the caller can bill
        and re-admit at the completion's grid time, exactly as a
        per-step loop would.

        Wide coupled sets (``>= 8`` running engines — a fleet shard
        with dozens of concurrent jobs) batch the per-round stream
        counts, the refill check and the energy deltas into single
        NumPy array passes; long spans batch the time additions into
        one sequential-fold accumulate. Both are bit-equal to the
        scalar round (integer compares; float64 subtraction and
        left-fold addition are the identical scalar operations).
        """
        dt = self.dt
        completed: list[JobRecord] = []
        while self.time < horizon - 1e-9:
            self._admit_jobs()
            running = self._running()
            if not running:
                break
            k_cap = max(1, math.ceil((horizon - self.time - 1e-9) / dt))
            if k_cap > 1 and self._unstarted:
                # Never step past the grid point where a future
                # arrival becomes admittable. Arrived-but-slot-capped
                # jobs do not bound the span: their next admission
                # opportunity is a completion, where we return anyway.
                self._sort_unstarted()
                for record, _engine in self._unstarted:
                    if record.arrival_time > self.time + 1e-12:
                        k_arr = math.ceil(
                            (record.arrival_time - self.time - 1e-12) / dt
                        )
                        k_cap = min(k_cap, max(1, k_arr))
                        break
            n = len(running)
            engines = [engine for _record, engine in running]
            counts0 = [self._busy_streams(engine) for engine in engines]
            total0 = sum(counts0)
            vector = n >= _VECTOR_MIN_ENGINES
            counts_arr = np.array(counts0, dtype=np.int64) if vector else None
            backgrounds = self._backgrounds(
                running, counts0, total0, counts_arr
            )
            for i, engine in enumerate(engines):
                engine.set_background_streams(backgrounds[i])
            self._impose_caps(running)
            prepared_busy: list[list[Channel]] = []
            prepared_rates: list[dict[int, float]] = []
            for engine in engines:
                busy, rates = engine.prepare_step()
                prepared_busy.append(busy)
                prepared_rates.append(rates)
            # With a topology attached, even a lone engine may be
            # coupled: its rate cap is recomputed every round from its
            # own pre-assignment busy channels. A refill can *raise*
            # demand (and newly bind a cap at interior grid steps), so
            # the refill check always applies under a placer; a count
            # dip can only *lower* demand, so an engine with no cap
            # imposed stays uncapped across a span and only capped
            # engines need the count-stability bound. An uncapped
            # single-link run therefore takes exactly the legacy
            # bounds — the byte-identity the topo tests pin down.
            capped = self._placer is not None and any(
                engine.capacity_cap is not None for engine in engines
            )
            coupled = n > 1 or capped
            k = k_cap
            if k > 1 and (n > 1 or self._placer is not None):
                # Work assignment refilled or re-bound a channel: the
                # count the peers sample next round already differs
                # from the frozen one, so only one exact step is safe.
                refilled = False
                if vector:
                    new_counts = np.fromiter(
                        (
                            sum(c.parallelism for c in busy)
                            for busy in prepared_busy
                        ),
                        dtype=np.int64,
                        count=n,
                    )
                    refilled = bool((new_counts != counts_arr).any())
                else:
                    for i, busy in enumerate(prepared_busy):
                        if sum(c.parallelism for c in busy) != counts0[i]:
                            refilled = True
                            break
                if refilled:
                    if n > 1 or capped or self._would_bind(running):
                        k = 1
                    # else: a lone uncapped flow whose refilled
                    # (post-assignment) demand still clears every
                    # bottleneck — interior grid steps stay uncapped
                    # too, so the legacy span bounds apply unchanged
            if k > 1:
                for i, engine in enumerate(engines):
                    k = min(k, engine.stable_steps(prepared_busy[i], prepared_rates[i], k))
                    if k < 2:
                        k = 1
                        break
                    if coupled:
                        k = min(k, engine.count_stable_steps(prepared_rates[i], k))
                        if k < 2:
                            k = 1
                            break
            if vector:
                before = np.fromiter(
                    (engine.total_energy for engine in engines),
                    dtype=np.float64,
                    count=n,
                )
                for i, engine in enumerate(engines):
                    engine.advance_prepared(prepared_busy[i], prepared_rates[i], k)
                after = np.fromiter(
                    (engine.total_energy for engine in engines),
                    dtype=np.float64,
                    count=n,
                )
                deltas = after - before
                for i, (record, _engine) in enumerate(running):
                    record.energy_joules += float(deltas[i])
            else:
                for i, (record, engine) in enumerate(running):
                    before_energy = engine.total_energy
                    engine.advance_prepared(prepared_busy[i], prepared_rates[i], k)
                    record.energy_joules += engine.total_energy - before_energy
            # repeated addition: bit-equal to grid time (long spans
            # batch the additions into one sequential-fold array op)
            if k >= ACCUM_VECTOR_MIN:
                self.time = float(accumulate_times(self.time, dt, k)[-1])
            else:
                for _ in range(k):
                    self.time += dt
            if k > 1:
                self.macro_rounds += 1
                self.macro_stepped_dts += k
            else:
                self.fixed_rounds += 1
            for record, engine in running:
                if engine.finished and not record.finished:
                    record.completion_time = self.time
                    engine.flush_fallback_events()
                    self._release_flow(record)
                    completed.append(record)
            if completed:
                break
        return completed

    def run(
        self, *, max_time: Seconds = 1e7, on_timeout: str = "raise"
    ) -> list[JobRecord]:
        """Run until every submitted job completes (or ``max_time``).

        A truncated run is never silent: with ``on_timeout="raise"``
        (the default) a :class:`TransferTimeout` lists the unfinished
        jobs; ``on_timeout="warn"`` emits a :class:`RuntimeWarning`
        instead and flags the affected records (``truncated=True``) so
        downstream deadline/queue-wait accounting can exclude them.
        """
        if on_timeout not in ("raise", "warn"):
            raise ValueError(
                f"on_timeout must be 'raise' or 'warn', got {on_timeout!r}"
            )
        while self.time < max_time and not all(r.finished for r, _ in self._jobs):
            self.step()
        self.flush_topo_events()
        unfinished = [r for r, _ in self._jobs if not r.finished]
        if unfinished:
            names = ", ".join(r.name for r in unfinished)
            message = (
                f"multi-transfer run hit max_time={max_time:g} s with "
                f"{len(unfinished)} unfinished job(s): {names}"
            )
            for record in unfinished:
                record.truncated = True
            if on_timeout == "raise":
                raise TransferTimeout(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        return self.records()

    # ------------------------------------------------------------------

    def records(self) -> list[JobRecord]:
        """Every submitted job's record, in submission order."""
        return [record for record, _ in self._jobs]

    @property
    def total_energy(self) -> Joules:
        """Joules drawn across all jobs so far."""
        return sum(record.energy_joules for record, _ in self._jobs)

    @property
    def makespan(self) -> Seconds:
        """Completion time (seconds) of the last finished job (0 if none)."""
        times = [r.completion_time for r, _ in self._jobs if r.completion_time]
        return max(times) if times else 0.0
