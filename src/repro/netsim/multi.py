"""Multiple transfers sharing one path.

A transfer service rarely moves one dataset at a time. This module runs
several :class:`TransferEngine` instances in lock-step against the same
path: at every step each job sees every *other* active job's TCP
streams as competing traffic, so the link is divided per-stream across
jobs exactly as it is within one (TCP fairness), and per-job energy is
accounted separately.

It deliberately supports **statically planned** jobs (a list of
``ChunkPlan``\\ s — what MinE, ProMC, SC, GUC produce); the adaptive
algorithms own their engine's control loop and are exercised against
cross-traffic through ``engine_options(background_traffic=...)``
instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed
from repro.units import Bytes, BytesPerSecond, Joules, Seconds

__all__ = ["JobRecord", "MultiTransferSimulator", "TransferTimeout"]


class TransferTimeout(RuntimeError):
    """``run(max_time=...)`` expired with unfinished jobs.

    Raising (rather than returning truncated records as if they were
    complete) keeps service-level deadline accounting honest: a job
    whose completion time is unknown must not be mistaken for one that
    met — or missed — its deadline.
    """


@dataclass
class JobRecord:
    """Lifecycle and cost of one job in a multi-transfer run.

    Times are simulated seconds, sizes bytes, energy joules.
    """

    name: str
    arrival_time: Seconds
    total_bytes: Bytes
    start_time: Optional[Seconds] = None
    completion_time: Optional[Seconds] = None
    energy_joules: Joules = 0.0
    #: Set when a ``run`` hit its ``max_time`` before this job finished
    #: (only reachable with ``on_timeout="warn"``; the default raises).
    truncated: bool = False

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def turnaround_s(self) -> Seconds:
        """Arrival-to-completion time in seconds (raises if unfinished)."""
        if self.completion_time is None:
            raise ValueError(f"job {self.name!r} has not finished")
        return self.completion_time - self.arrival_time

    @property
    def throughput(self) -> BytesPerSecond:
        """Mean rate while running, bytes/s."""
        if self.completion_time is None or self.start_time is None:
            return 0.0
        elapsed = self.completion_time - self.start_time
        return self.total_bytes / elapsed if elapsed > 0 else 0.0


class MultiTransferSimulator:
    """Lock-step coordinator for jobs sharing a testbed's path.

    ``max_concurrent_jobs`` models the provider's admission policy:
    arrived jobs beyond the cap queue (FIFO by arrival, ties by
    submission order) until a slot frees up.
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        max_concurrent_jobs: Optional[int] = None,
        binding: Binding = Binding.PACK,
    ) -> None:
        if max_concurrent_jobs is not None and max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        self.testbed = testbed
        self.max_concurrent_jobs = max_concurrent_jobs
        self.binding = binding
        self.dt = testbed.engine_dt
        self.time = 0.0
        self._jobs: list[tuple[JobRecord, TransferEngine]] = []

    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        plans: Sequence[ChunkPlan],
        *,
        arrival_time: Seconds = 0.0,
    ) -> JobRecord:
        """Queue a statically planned job."""
        if arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if any(record.name == name for record, _ in self._jobs):
            raise ValueError(f"duplicate job name {name!r}")
        model = FineGrainedPowerModel(self.testbed.coefficients)
        engine = TransferEngine(
            self.testbed.path,
            self.testbed.source,
            self.testbed.destination,
            model.power,
            dt=self.dt,
            binding=self.binding,
            work_stealing=True,
        )
        record = JobRecord(
            name=name,
            arrival_time=arrival_time,
            total_bytes=float(sum(p.total_size for p in plans)),
        )
        # chunks registered up front; channels open when the job starts
        for plan in plans:
            engine.submit_chunk(plan)
        self._jobs.append((record, engine))
        return record

    # ------------------------------------------------------------------

    def _running(self) -> list[tuple[JobRecord, TransferEngine]]:
        return [
            (record, engine)
            for record, engine in self._jobs
            if record.start_time is not None and not record.finished
        ]

    def _admit_jobs(self) -> None:
        running = self._running()
        slots = (
            self.max_concurrent_jobs - len(running)
            if self.max_concurrent_jobs is not None
            else None
        )
        waiting = [
            (record, engine)
            for record, engine in self._jobs
            if record.start_time is None and record.arrival_time <= self.time + 1e-12
        ]
        # FIFO by arrival; ties resolved by submission order (the sort
        # is stable and ``self._jobs`` is kept in submission order).
        waiting.sort(key=lambda pair: pair[0].arrival_time)
        for record, engine in waiting:
            if slots is not None and slots <= 0:
                break
            record.start_time = self.time
            engine.admit_pending()
            if slots is not None:
                slots -= 1

    @staticmethod
    def _busy_streams(engine: TransferEngine) -> int:
        return sum(c.parallelism for c in engine.channels if c.busy)

    def step(self) -> None:
        """Advance every running job one shared time step."""
        self._admit_jobs()
        running = self._running()
        stream_counts = {id(engine): self._busy_streams(engine) for _, engine in running}
        total_streams = sum(stream_counts.values())
        for record, engine in running:
            others = total_streams - stream_counts[id(engine)]
            engine.set_background_streams(others)
            before_energy = engine.total_energy
            engine.step()
            record.energy_joules += engine.total_energy - before_energy
            if engine.finished and not record.finished:
                record.completion_time = self.time + self.dt
        self.time += self.dt

    def run(
        self, *, max_time: Seconds = 1e7, on_timeout: str = "raise"
    ) -> list[JobRecord]:
        """Run until every submitted job completes (or ``max_time``).

        A truncated run is never silent: with ``on_timeout="raise"``
        (the default) a :class:`TransferTimeout` lists the unfinished
        jobs; ``on_timeout="warn"`` emits a :class:`RuntimeWarning`
        instead and flags the affected records (``truncated=True``) so
        downstream deadline/queue-wait accounting can exclude them.
        """
        if on_timeout not in ("raise", "warn"):
            raise ValueError(
                f"on_timeout must be 'raise' or 'warn', got {on_timeout!r}"
            )
        while self.time < max_time and not all(r.finished for r, _ in self._jobs):
            self.step()
        unfinished = [r for r, _ in self._jobs if not r.finished]
        if unfinished:
            names = ", ".join(r.name for r in unfinished)
            message = (
                f"multi-transfer run hit max_time={max_time:g} s with "
                f"{len(unfinished)} unfinished job(s): {names}"
            )
            for record in unfinished:
                record.truncated = True
            if on_timeout == "raise":
                raise TransferTimeout(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        return self.records()

    # ------------------------------------------------------------------

    def records(self) -> list[JobRecord]:
        """Every submitted job's record, in submission order."""
        return [record for record, _ in self._jobs]

    @property
    def total_energy(self) -> Joules:
        """Joules drawn across all jobs so far."""
        return sum(record.energy_joules for record, _ in self._jobs)

    @property
    def makespan(self) -> Seconds:
        """Completion time (seconds) of the last finished job (0 if none)."""
        times = [r.completion_time for r, _ in self._jobs if r.completion_time]
        return max(times) if times else 0.0
