"""Disk subsystem models.

Storage is the second bottleneck the algorithms reason about, and the
paper's three testbeds span the two interesting regimes:

* **Parallel arrays** (XSEDE's Lustre-backed transfer nodes): each
  extra accessor (data-channel stream) engages another stripe, so
  aggregate throughput *scales* with concurrency up to the array limit.
  "Concurrency ... can result in better throughput especially for
  transfers in which disk IO is the bottleneck and the end systems have
  parallel disk systems."

* **Single spindles** (DIDCLAB workstations): concurrent accessors make
  the head seek, so aggregate throughput *decreases* with concurrency.
  "This is due to having single disk storage subsystem whose IO speed
  decreases when the number of concurrent accesses increases."
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["DiskSubsystem", "SingleDisk", "ParallelDisk", "PowerLawDisk"]


class DiskSubsystem(ABC):
    """Aggregate IO capacity as a function of concurrent accessors."""

    @abstractmethod
    def aggregate_capacity(self, accessors: int) -> float:
        """Total sustainable IO rate (bytes/s) with ``accessors``
        concurrent sequential readers/writers. Must return 0.0 for zero
        accessors."""

    def _check(self, accessors: int) -> None:
        if accessors < 0:
            raise ValueError(f"accessors must be >= 0, got {accessors}")


@dataclass(frozen=True, slots=True)
class SingleDisk(DiskSubsystem):
    """One spindle: contention shrinks aggregate throughput.

    ``aggregate_capacity(n) = peak_rate * n**(-contention_alpha)``: the
    aggregate is highest for a single sequential accessor and decays as
    seeks multiply. ``contention_alpha ~= 0.12`` reproduces the ~25%
    decline from 1 to 12 concurrent channels seen at DIDCLAB (Fig. 4a).
    """

    peak_rate: float
    contention_alpha: float = 0.12

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ValueError(f"peak_rate must be > 0, got {self.peak_rate}")
        if self.contention_alpha < 0:
            raise ValueError("contention_alpha must be >= 0")

    def aggregate_capacity(self, accessors: int) -> float:
        self._check(accessors)
        if accessors == 0:
            return 0.0
        return self.peak_rate * accessors ** (-self.contention_alpha)


@dataclass(frozen=True, slots=True)
class PowerLawDisk(DiskSubsystem):
    """Diminishing-returns storage: ``aggregate(n) = single_rate * n**exponent``.

    ``0 < exponent < 1`` models a small RAID / soft-striped volume: one
    sequential reader already gets most of the bandwidth, extra
    accessors add a little more (FutureGrid's nodes behave this way —
    one channel reaches ~60% of the path maximum). ``exponent = 0``
    degenerates to a flat shared cap; negative exponents reproduce
    :class:`SingleDisk` contention.
    """

    single_rate: float
    exponent: float

    def __post_init__(self) -> None:
        if self.single_rate <= 0:
            raise ValueError("single_rate must be > 0")
        if not (-1.0 < self.exponent < 1.0):
            raise ValueError("exponent must be in (-1, 1)")

    def aggregate_capacity(self, accessors: int) -> float:
        self._check(accessors)
        if accessors == 0:
            return 0.0
        return self.single_rate * accessors**self.exponent


@dataclass(frozen=True, slots=True)
class ParallelDisk(DiskSubsystem):
    """A striped array / parallel filesystem mount.

    Each accessor sustains up to ``per_accessor_rate`` from its own
    stripe; the array tops out at ``array_rate``.
    """

    per_accessor_rate: float
    array_rate: float

    def __post_init__(self) -> None:
        if self.per_accessor_rate <= 0:
            raise ValueError("per_accessor_rate must be > 0")
        if self.array_rate < self.per_accessor_rate:
            raise ValueError("array_rate must be >= per_accessor_rate")

    def aggregate_capacity(self, accessors: int) -> float:
        self._check(accessors)
        return min(accessors * self.per_accessor_rate, self.array_rate)
