"""Data-channel state machine.

A channel is one GridFTP-style data connection: it repeatedly pulls the
next file off its chunk's queue, streams its bytes (possibly over
several parallel TCP streams), and pays a control-channel gap between
files. Pipelining level ``pp`` keeps ``pp`` file requests in flight, so
the acknowledgement round-trip is amortized to ``RTT / pp`` per file —
this is the entire throughput benefit of pipelining for small files
(Section 2.1) and the entire energy cost of not using it (idle,
powered-up end systems waiting on ACKs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.files import FileInfo

__all__ = ["FileProgress", "Channel", "StepOutcome"]


@dataclass(slots=True)
class FileProgress:
    """A file with transfer progress attached (bytes still to move)."""

    file: FileInfo
    remaining: float

    @classmethod
    def fresh(cls, file: FileInfo) -> "FileProgress":
        return cls(file=file, remaining=float(file.size))


@dataclass(slots=True)
class StepOutcome:
    """What one channel did during one engine step."""

    bytes_moved: float = 0.0
    files_completed: int = 0


@dataclass(eq=False)  # identity semantics: two channels are never "equal"
class Channel:
    """One live data channel bound to a chunk and a server pair.

    The channel is a small explicit state machine advanced by
    :meth:`advance`: it is either in a *control gap* (``gap_remaining``
    seconds of zero payload), mid-file, or idle waiting for work.
    """

    chunk_name: str
    parallelism: int
    pipelining: int
    src_server: int
    dst_server: int
    rtt: float
    setup_delay: float = 0.0
    file_overhead: float = 0.0
    #: Control-channel round trips a file costs without pipelining
    #: (command, transfer-complete acknowledgement, next command).
    control_rtt_factor: float = 2.5
    current: Optional[FileProgress] = None
    gap_remaining: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.parallelism < 1 or self.pipelining < 1:
            raise ValueError("parallelism and pipelining must be >= 1")
        if self.rtt < 0 or self.setup_delay < 0 or self.file_overhead < 0:
            raise ValueError("rtt, setup_delay and file_overhead must be >= 0")
        # Opening a channel costs a control-channel round trip before the
        # first byte flows (connection establishment + authentication).
        self.gap_remaining = self.rtt + self.setup_delay

    @property
    def per_file_gap(self) -> float:
        """Control-channel stall after each file completion.

        Without pipelining every file pays ``control_rtt_factor`` RTTs
        of control-channel exchange; pipelining level ``pp`` keeps
        ``pp`` requests in flight, overlapping that exchange with the
        next transfers, so each file pays ``factor * RTT / pp`` on
        average. The end-system per-file overhead (``file_overhead``,
        filesystem metadata etc.) cannot be pipelined away.
        """
        return self.control_rtt_factor * self.rtt / self.pipelining + self.file_overhead

    @property
    def transferring(self) -> bool:
        """True when the channel would move payload bytes right now."""
        return self.current is not None and self.gap_remaining <= 0.0

    @property
    def busy(self) -> bool:
        """True when the channel holds a file (even if inside a gap)."""
        return self.current is not None

    def time_to_completion(self, rate: float) -> float:
        """Seconds until the in-flight file completes at payload ``rate``.

        The pending control-channel gap is served before payload flows,
        so the completion horizon is ``gap_remaining + remaining/rate``.
        Returns ``inf`` when the channel holds no file or is stalled
        (``rate <= 0``) — no completion event will ever fire from this
        state without external change. Used by the engine's event-horizon
        fast path to find the next state change.
        """
        if self.current is None or rate <= 0.0:
            return math.inf
        return self.gap_remaining + self.current.remaining / rate

    def take_from(self, queue) -> bool:
        """Pull the next file from ``queue`` (a deque of FileProgress).

        Returns True if a file was acquired.
        """
        if self.current is not None:
            return True
        if not queue:
            return False
        self.current = queue.popleft()
        return True

    def release_to(self, queue) -> None:
        """Return the in-progress file to the front of ``queue``.

        Used when the adaptive algorithms close a channel mid-file: no
        bytes are lost, the remainder is picked up by another channel.
        """
        if self.current is not None:
            queue.appendleft(self.current)
            self.current = None

    def advance(self, rate: float, dt: float, queue) -> StepOutcome:
        """Advance the channel ``dt`` seconds at payload rate ``rate``.

        Processes as many gap/transfer transitions as fit in the step,
        so channels chewing through many small files per step are
        handled exactly rather than one-file-per-step.
        """
        if rate < 0 or dt < 0:
            raise ValueError("rate and dt must be >= 0")
        outcome = StepOutcome()
        time_left = dt
        while time_left > 1e-12:
            if self.gap_remaining > 0.0:
                consumed = min(self.gap_remaining, time_left)
                self.gap_remaining -= consumed
                time_left -= consumed
                continue
            if self.current is None and not self.take_from(queue):
                break  # queue drained; channel idles out the step
            assert self.current is not None
            if rate <= 0.0:
                break  # stalled by allocation; gap time still elapsed above
            time_to_finish = self.current.remaining / rate
            if time_to_finish > time_left:
                moved = rate * time_left
                self.current.remaining -= moved
                outcome.bytes_moved += moved
                time_left = 0.0
            else:
                outcome.bytes_moved += self.current.remaining
                time_left -= time_to_finish
                self.current = None
                outcome.files_completed += 1
                self.gap_remaining = self.per_file_gap
        return outcome
