"""Steady-state TCP throughput model.

The fluid engine needs two facts about TCP, both taken straight from
the mechanisms the paper's parameter formulas exploit:

1. **A single stream is buffer-limited.** On a path with round-trip
   time ``RTT`` and a send/receive buffer of ``buf`` bytes, a stream
   can keep at most one buffer in flight per RTT, so its goodput is
   ``min(buf / RTT, link bandwidth)``. When ``buf < BDP`` the stream
   cannot fill the pipe — this is exactly why *parallelism* helps on
   high-BDP paths (Section 2.1).

2. **Aggregate goodput degrades past a knee.** Opening ever more
   simultaneous streams increases loss and end-system overhead; beyond
   ``congestion_knee`` streams the achievable aggregate goodput shrinks
   multiplicatively per extra stream ("using too many simultaneous
   streams can cause network congestion and throughput decline").
"""

from __future__ import annotations

from functools import lru_cache

from repro.netsim.link import NetworkPath

__all__ = ["stream_throughput", "channel_network_cap", "aggregate_goodput", "loss_fraction"]

# NetworkPath is a frozen dataclass, hence hashable: the model functions
# below are pure in (path, arg), so they memoize cleanly. The engine
# evaluates them with the same arguments on nearly every step of a
# stable stretch.


@lru_cache(maxsize=4096)
def loss_fraction(path: NetworkPath, total_streams: float) -> float:
    """Fraction of transmitted segments lost (and retransmitted) at a
    given live stream count: zero up to the congestion knee, then the
    complement of the goodput-degradation factor. Used for wire-byte
    accounting — lost segments are carried by the network and paid for
    by every device on the path, even though they add no goodput."""
    if total_streams < 0:
        raise ValueError(f"total_streams must be >= 0, got {total_streams}")
    excess = max(0.0, total_streams - path.congestion_knee)
    return 1.0 - (1.0 - path.congestion_slope) ** excess


@lru_cache(maxsize=1024)
def stream_throughput(path: NetworkPath) -> float:
    """Steady-state goodput of one TCP stream on ``path`` (bytes/s)."""
    if path.rtt == 0:
        return path.bandwidth * path.protocol_efficiency
    return min(path.tcp_buffer / path.rtt, path.bandwidth) * path.protocol_efficiency


@lru_cache(maxsize=4096)
def channel_network_cap(path: NetworkPath, parallelism: int) -> float:
    """Network-side cap of one data channel using ``parallelism`` streams.

    Parallel streams multiply the buffer-limited term but can never
    exceed the link itself.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    if path.rtt == 0:
        return path.bandwidth * path.protocol_efficiency
    buffer_limited = parallelism * path.tcp_buffer / path.rtt
    return min(buffer_limited, path.bandwidth) * path.protocol_efficiency


@lru_cache(maxsize=4096)
def aggregate_goodput(path: NetworkPath, total_streams: int) -> float:
    """Aggregate achievable goodput with ``total_streams`` live streams.

    Flat at ``protocol_efficiency * bandwidth`` up to the congestion
    knee, then declining multiplicatively, floored at 10% of nominal so
    the model never predicts a dead link.
    """
    if total_streams < 0:
        raise ValueError(f"total_streams must be >= 0, got {total_streams}")
    if total_streams == 0:
        return 0.0
    base = path.bandwidth * path.protocol_efficiency
    excess = max(0, total_streams - path.congestion_knee)
    factor = (1.0 - path.congestion_slope) ** excess
    return max(base * factor, 0.10 * path.bandwidth)
