"""Application-layer transfer parameters.

The paper tunes exactly three knobs (Section 2.1):

* **pipelining** — how many file requests are kept in flight on the
  control channel, hiding one RTT of acknowledgement latency per file;
* **parallelism** — how many TCP streams carry a single file, multiplying
  the buffer-limited per-stream throughput;
* **concurrency** — how many files are transferred at once over separate
  data channels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TransferParams"]


@dataclass(frozen=True, slots=True)
class TransferParams:
    """One (pipelining, parallelism, concurrency) setting.

    ``concurrency`` here is the number of data channels allotted to the
    chunk this parameter set applies to; the algorithms of the paper
    decide it per chunk out of a global channel budget. It may be 0: a
    chunk with no dedicated channels is served later through the
    engine's work stealing (the multi-chunk channel-reallocation
    mechanism of the custom GridFTP client).
    """

    pipelining: int = 1
    parallelism: int = 1
    concurrency: int = 1

    def __post_init__(self) -> None:
        for field_name in ("pipelining", "parallelism", "concurrency"):
            value = getattr(self, field_name)
            if not isinstance(value, int):
                raise TypeError(f"{field_name} must be an int, got {type(value).__name__}")
        if self.pipelining < 1 or self.parallelism < 1:
            raise ValueError("pipelining and parallelism must be >= 1")
        if self.concurrency < 0:
            raise ValueError(f"concurrency must be >= 0, got {self.concurrency}")

    @property
    def total_streams(self) -> int:
        """TCP streams opened by this setting (channels x streams each)."""
        return self.parallelism * self.concurrency

    def with_concurrency(self, concurrency: int) -> "TransferParams":
        """A copy with a different channel count (used by the adaptive
        algorithms when they re-allocate channels mid-transfer)."""
        return replace(self, concurrency=concurrency)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"pp={self.pipelining} p={self.parallelism} cc={self.concurrency}"
