"""End-system (server) hardware model.

An :class:`EndSystem` is one *site* of a transfer — e.g. Stampede at
TACC — consisting of ``server_count`` identical data-transfer nodes
described by a :class:`ServerSpec`. The paper's custom GridFTP client
packs all data channels onto a single node, while Globus Online and
globus-url-copy spread channels across all nodes; which nodes are awake
drives the end-system energy difference the paper measures (Section 3,
the "GO consumes ~60% more energy" observation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.netsim.disk import DiskSubsystem

__all__ = ["ServerSpec", "EndSystem"]


@dataclass(frozen=True, slots=True)
class ServerSpec:
    """One data-transfer node.

    Parameters
    ----------
    cores:
        Physical cores; the per-core CPU power coefficient of Eq. 2
        depends on how many are active, and running more transfer
        processes than cores costs context-switch overhead.
    tdp_watts:
        CPU thermal design power; used by the TDP-scaled CPU power
        model (Eq. 3) to port coefficients across machines.
    nic_rate:
        NIC line rate, bytes/s.
    disk:
        The node's storage subsystem model.
    per_channel_rate:
        Host-side processing cap of one data channel (one worker
        process with its protocol/copy pipeline), bytes/s — this is
        what bounds a single untuned transfer regardless of the
        network, and why concurrency is the paper's most influential
        parameter.
    core_rate:
        Transfer payload one fully-busy core can move, bytes/s; converts
        carried throughput into CPU utilization.
    channel_cpu_overhead / stream_cpu_overhead:
        Fixed CPU cost (in cores) per active channel process / stream
        thread.
    active_overhead:
        CPU cost (in cores) of merely participating in a transfer
        (GridFTP server process, bookkeeping). Paid once per awake
        node, which is what makes spreading channels across nodes
        expensive.
    thrash_factor:
        Extra CPU work fraction per unit of channels/cores oversubscription,
        modeling context-switch cost once channels exceed cores.
    mem_rate:
        Memory-bandwidth proxy used for the memory utilization metric.
    per_file_overhead:
        Seconds of per-file end-system overhead (filesystem metadata,
        data-channel handshake) that pipelining cannot hide; the reason
        many-small-files workloads run below line rate even when tuned.
    """

    name: str
    cores: int
    tdp_watts: float
    nic_rate: float
    disk: DiskSubsystem
    per_channel_rate: float
    core_rate: float
    channel_cpu_overhead: float = 0.02
    stream_cpu_overhead: float = 0.005
    active_overhead: float = 0.30
    thrash_factor: float = 0.05
    mem_rate: float = 10 * units.GB
    per_file_overhead: float = 0.02

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.tdp_watts <= 0:
            raise ValueError("tdp_watts must be > 0")
        for field_name in ("nic_rate", "per_channel_rate", "core_rate", "mem_rate"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be > 0")
        for field_name in (
            "channel_cpu_overhead",
            "stream_cpu_overhead",
            "active_overhead",
            "thrash_factor",
            "per_file_overhead",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")


@dataclass(frozen=True, slots=True)
class EndSystem:
    """A site with one or more identical data-transfer servers."""

    name: str
    server: ServerSpec
    server_count: int = 1

    def __post_init__(self) -> None:
        if self.server_count < 1:
            raise ValueError(f"server_count must be >= 1, got {self.server_count}")
