"""End-to-end network path model.

A :class:`NetworkPath` captures the published characteristics of each
testbed link — nominal bandwidth, round-trip time, and the maximum TCP
buffer the end systems can allocate — plus the two parameters of the
congestion model (see :mod:`repro.netsim.tcp`): the stream count at
which aggregate goodput starts to degrade and how fast it degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

__all__ = ["NetworkPath"]


@dataclass(frozen=True, slots=True)
class NetworkPath:
    """A bidirectional end-to-end path between two sites.

    Parameters
    ----------
    bandwidth:
        Nominal bottleneck capacity, bytes/second.
    rtt:
        Round-trip time, seconds.
    tcp_buffer:
        Maximum TCP buffer size per stream, bytes (the paper's
        ``bufSize``; 32 MB on all three testbeds).
    protocol_efficiency:
        Fraction of nominal bandwidth achievable by TCP goodput once
        headers, ACK traffic and kernel overheads are paid (~0.93 for a
        well-tuned path). This caps aggregate goodput.
    congestion_knee:
        Total simultaneous streams beyond which packet loss starts to
        reduce aggregate goodput ("too many streams cause network
        congestion and throughput decline", Section 2.1).
    congestion_slope:
        Per-extra-stream multiplicative loss factor past the knee.
    header_overhead:
        Wire bytes per payload byte spent on TCP/IP/Ethernet framing
        (~0.037 for 1460-byte MSS in 1514-byte frames). Used for wire-
        level accounting (what the switches actually carry), not for
        goodput.
    """

    bandwidth: float
    rtt: float
    tcp_buffer: float
    protocol_efficiency: float = 0.93
    congestion_knee: int = 24
    congestion_slope: float = 0.01
    header_overhead: float = 0.037

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.rtt < 0:
            raise ValueError(f"rtt must be >= 0, got {self.rtt}")
        if self.tcp_buffer <= 0:
            raise ValueError(f"tcp_buffer must be > 0, got {self.tcp_buffer}")
        if not (0 < self.protocol_efficiency <= 1):
            raise ValueError("protocol_efficiency must be in (0, 1]")
        if self.congestion_knee < 1:
            raise ValueError("congestion_knee must be >= 1")
        if self.congestion_slope < 0:
            raise ValueError("congestion_slope must be >= 0")
        if self.header_overhead < 0:
            raise ValueError("header_overhead must be >= 0")

    @property
    def bdp(self) -> float:
        """Bandwidth-delay product in bytes."""
        return units.bdp_bytes(self.bandwidth, self.rtt)

    def describe(self) -> str:
        """One line of link facts (rate, RTT, buffer, BDP)."""
        return (
            f"{units.to_gbps(self.bandwidth):.1f} Gbps, "
            f"RTT {units.to_ms(self.rtt):.1f} ms, "
            f"TCP buffer {units.to_MB(self.tcp_buffer):.0f} MB, "
            f"BDP {units.to_MB(self.bdp):.1f} MB"
        )
