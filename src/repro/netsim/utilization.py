"""Component utilization model.

The power models of the paper (Eq. 1 and Eq. 3) are driven entirely by
operating-system utilization metrics of four components: CPU, memory,
disk and NIC. This module converts the fluid engine's per-server view
(how many channels/streams are active, how much throughput they carry)
into those utilization metrics.

Conventions:

* ``cpu_pct`` is the *total* CPU percentage summed over cores, as
  reported by ``top``-style tools — a 4-core box fully busy reads 400.
  Eq. 1 multiplies it by the per-core coefficient of Eq. 2.
* ``mem_pct``, ``disk_pct``, ``nic_pct`` are 0-100 per-component
  utilizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.endpoint import ServerSpec

__all__ = ["Utilization", "compute_utilization"]


@dataclass(frozen=True, slots=True)
class Utilization:
    """Instantaneous utilization snapshot of one server."""

    cpu_pct: float = 0.0
    mem_pct: float = 0.0
    disk_pct: float = 0.0
    nic_pct: float = 0.0
    active_cores: int = 0
    channels: int = 0
    streams: int = 0
    throughput: float = 0.0

    @property
    def is_idle(self) -> bool:
        return self.channels == 0


def compute_utilization(
    spec: ServerSpec,
    channels: int,
    streams: int,
    throughput: float,
) -> Utilization:
    """Utilization of ``spec`` carrying ``throughput`` bytes/s over
    ``channels`` data channels totalling ``streams`` TCP streams.

    CPU cost has three parts: payload work (``throughput/core_rate``
    cores, inflated by context-switch thrash once channels exceed
    cores), per-channel/per-stream bookkeeping, and the fixed
    participation overhead of an awake transfer node.
    """
    if channels < 0 or streams < 0:
        raise ValueError("channels and streams must be >= 0")
    if throughput < 0:
        raise ValueError("throughput must be >= 0")
    if channels == 0:
        return Utilization()
    if streams < channels:
        raise ValueError(f"streams ({streams}) cannot be < channels ({channels})")

    active_cores = min(spec.cores, channels)

    work_cores = throughput / spec.core_rate
    if channels > spec.cores:
        work_cores *= 1.0 + spec.thrash_factor * (channels - spec.cores) / spec.cores
    overhead_cores = (
        spec.active_overhead
        + spec.channel_cpu_overhead * channels
        + spec.stream_cpu_overhead * streams
    )
    cpu_pct = min(100.0 * spec.cores, 100.0 * (work_cores + overhead_cores))

    disk_capacity = spec.disk.aggregate_capacity(channels)
    disk_pct = min(100.0, 100.0 * throughput / disk_capacity) if disk_capacity > 0 else 0.0

    return Utilization(
        cpu_pct=cpu_pct,
        mem_pct=min(100.0, 100.0 * throughput / spec.mem_rate),
        disk_pct=disk_pct,
        nic_pct=min(100.0, 100.0 * throughput / spec.nic_rate),
        active_cores=active_cores,
        channels=channels,
        streams=streams,
        throughput=throughput,
    )
