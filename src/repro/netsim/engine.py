"""Fluid-flow transfer engine.

The engine advances a set of live data channels in fixed time steps
(default 0.25 s). Each step it

1. solves a **max-min fair rate allocation** for all busy channels,
   subject to per-channel caps (buffer-limited TCP, host per-stream
   processing) and shared capacities (link goodput with the congestion
   knee, per-server NIC and disk aggregates);
2. advances every channel's file/gap state machine by the step;
3. converts each server's carried load into component utilizations and
   integrates the supplied power model into joules.

Everything is deterministic; the adaptive algorithms of the paper
(HTEE's probe phase, SLAEE's feedback loop) interact with a running
engine through :meth:`TransferEngine.run` (bounded horizons) and
:meth:`TransferEngine.set_chunk_channels` (live re-allocation), exactly
the control surface the custom GridFTP client exposes.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.datasets.files import FileInfo
from repro.netsim import tcp
from repro.netsim.channel import Channel, FileProgress
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.netsim.utilization import Utilization, compute_utilization

__all__ = [
    "Binding",
    "ChunkPlan",
    "ChunkState",
    "EngineEvent",
    "EngineSnapshot",
    "StepRecord",
    "TransferEngine",
    "PowerFn",
]

#: Signature of the pluggable end-system power model: watts drawn by a
#: server of the given spec at the given utilization (load-dependent part).
PowerFn = Callable[[ServerSpec, Utilization], float]


class Binding(enum.Enum):
    """How new channels are bound to a site's transfer servers.

    ``PACK`` is the paper's custom GridFTP client behaviour (all
    channels on one node, keeping the other nodes asleep); ``SPREAD``
    is Globus Online / globus-url-copy behaviour (round-robin across
    every node, waking all of them).
    """

    PACK = "pack"
    SPREAD = "spread"


@dataclass(frozen=True)
class ChunkPlan:
    """A chunk as planned by a transfer algorithm: files + parameters.

    ``params.concurrency`` is the *initial* channel count; adaptive
    algorithms change it later through the engine.
    """

    name: str
    files: tuple[FileInfo, ...]
    params: TransferParams

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chunk name must be non-empty")

    @property
    def total_size(self) -> int:
        return sum(f.size for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


@dataclass
class ChunkState:
    """Live transfer state of one chunk inside the engine."""

    plan: ChunkPlan
    queue: deque[FileProgress]
    bytes_done: float = 0.0
    files_done: int = 0

    @property
    def remaining_bytes(self) -> float:
        queued = sum(fp.remaining for fp in self.queue)
        return queued  # in-flight remainders are tracked by channels

    @property
    def exhausted(self) -> bool:
        return not self.queue


@dataclass(frozen=True)
class EngineSnapshot:
    """A point-in-time measurement used by adaptive controllers."""

    time: float
    bytes: float
    energy: float
    files: int

    def throughput_since(self, earlier: "EngineSnapshot") -> float:
        """Mean payload rate (bytes/s) since ``earlier`` (0 if no time passed)."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return (self.bytes - earlier.bytes) / dt

    def energy_since(self, earlier: "EngineSnapshot") -> float:
        """Joules accumulated since ``earlier``."""
        return self.energy - earlier.energy


@dataclass(frozen=True)
class StepRecord:
    """Optional per-step trace entry (enable with ``record_trace=True``)."""

    time: float
    throughput: float
    power: float
    active_channels: int


@dataclass(frozen=True)
class EngineEvent:
    """One entry of the structured event log (``record_events=True``).

    ``kind`` is one of: ``channel_opened``, ``channel_closed``,
    ``channel_reassigned``, ``channel_failed``, ``server_failed``,
    ``server_recovered``, ``chunk_drained``, ``file_completed``.
    ``detail`` carries the kind-specific facts (chunk, servers, file).
    """

    time: float
    kind: str
    detail: dict


class TransferEngine:
    """Simulates one end-to-end transfer job between two sites."""

    def __init__(
        self,
        path: NetworkPath,
        source: EndSystem,
        destination: EndSystem,
        power_model: PowerFn,
        *,
        dt: float = 0.25,
        binding: Binding = Binding.PACK,
        work_stealing: bool = True,
        record_trace: bool = False,
        record_events: bool = False,
        background_traffic: Optional[Callable[[float], float]] = None,
    ) -> None:
        """``background_traffic`` (optional) maps simulated time to the
        number of competing TCP streams sharing the path. The link is
        divided per-stream (TCP fairness), so the transfer's share is
        ``ours / (ours + competing)`` of the aggregate goodput — which
        is exactly why opening more channels/streams claws bandwidth
        back from cross-traffic, and how the adaptive algorithms are
        exercised against changing network conditions."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.path = path
        self.source = source
        self.destination = destination
        self.power_model = power_model
        self.dt = dt
        self.binding = binding
        self.work_stealing = work_stealing
        self.record_trace = record_trace
        self.record_events = record_events
        self.background_traffic = background_traffic

        self.time = 0.0
        self.total_bytes = 0.0
        #: Bytes the network actually carried: payload + framing
        #: headers + retransmitted segments under congestion loss.
        self.total_wire_bytes = 0.0
        self.total_energy = 0.0
        self.total_files = 0
        self.trace: list[StepRecord] = []
        #: Structured event log (populated when ``record_events``).
        self.events: list[EngineEvent] = []
        self._drained_logged: set[str] = set()
        self.chunks: dict[str, ChunkState] = {}
        self.channels: list[Channel] = []
        self._spread_counter = 0
        #: Servers currently failed, mapped to their recovery time.
        self._down_servers: dict[tuple[str, int], float] = {}
        #: Counters for post-mortem inspection.
        self.channel_failures = 0
        self.server_failures = 0
        #: Joules attributed per component (cpu/memory/disk/nic), filled
        #: when the power model exposes ``power_components`` (the
        #: fine-grained Eq. 1 model does).
        self.component_energy: dict[str, float] = {}
        owner = getattr(power_model, "__self__", None)
        self._component_fn = getattr(owner, "power_components", None)

    # ------------------------------------------------------------------
    # setup / channel management
    # ------------------------------------------------------------------

    def add_chunk(self, plan: ChunkPlan, *, open_channels: bool = True) -> ChunkState:
        """Register a chunk; optionally open its planned channels.

        Files are queued largest-first (longest-processing-time order),
        the standard makespan heuristic — it prevents a many-gigabyte
        file landing on a single channel as the very last item while
        every other channel idles.
        """
        if plan.name in self.chunks:
            raise ValueError(f"duplicate chunk name: {plan.name!r}")
        ordered = sorted(plan.files, key=lambda f: f.size, reverse=True)
        state = ChunkState(plan=plan, queue=deque(FileProgress.fresh(f) for f in ordered))
        self.chunks[plan.name] = state
        if open_channels:
            for _ in range(plan.params.concurrency):
                self.open_channel(plan.name)
        return state

    def _available_servers(self, side: str) -> list[int]:
        count = (self.source if side == "src" else self.destination).server_count
        return [i for i in range(count) if (side, i) not in self._down_servers]

    def open_channel(self, chunk_name: str) -> Channel:
        """Open one new data channel serving ``chunk_name``.

        Server choice honors the binding strategy but skips servers
        currently marked failed.
        """
        plan = self.chunks[chunk_name].plan
        src_avail = self._available_servers("src")
        dst_avail = self._available_servers("dst")
        if not src_avail or not dst_avail:
            raise RuntimeError("no available transfer server to open a channel on")
        if self.binding is Binding.PACK:
            src, dst = src_avail[0], dst_avail[0]
        else:
            src = src_avail[self._spread_counter % len(src_avail)]
            dst = dst_avail[self._spread_counter % len(dst_avail)]
            self._spread_counter += 1
        channel = Channel(
            chunk_name=chunk_name,
            parallelism=plan.params.parallelism,
            pipelining=plan.params.pipelining,
            src_server=src,
            dst_server=dst,
            rtt=self.path.rtt,
            file_overhead=(
                self.source.server.per_file_overhead
                + self.destination.server.per_file_overhead
            ),
        )
        self.channels.append(channel)
        self._log_event("channel_opened",
                        chunk=chunk_name, src_server=src, dst_server=dst)
        return channel

    def close_channel(self, channel: Channel) -> None:
        """Close a channel, returning any in-flight file to its queue."""
        channel.release_to(self.chunks[channel.chunk_name].queue)
        self.channels.remove(channel)
        self._log_event("channel_closed", chunk=channel.chunk_name)

    def channels_for(self, chunk_name: str) -> list[Channel]:
        """The channels currently assigned to ``chunk_name``."""
        return [c for c in self.channels if c.chunk_name == chunk_name]

    def set_chunk_channels(self, chunk_name: str, count: int) -> None:
        """Grow or shrink a chunk's channel set to exactly ``count``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        current = self.channels_for(chunk_name)
        for channel in current[count:]:
            self.close_channel(channel)
        for _ in range(count - len(current)):
            self.open_channel(chunk_name)

    def set_allocation(self, allocation: dict[str, int]) -> None:
        """Apply a full chunk -> channel-count allocation at once."""
        for chunk_name, count in allocation.items():
            self.set_chunk_channels(chunk_name, count)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def fail_channel(self, channel: Channel, *, restart_file: bool = False) -> None:
        """Kill one data channel (connection reset, process crash).

        The in-flight file returns to its chunk's queue; with
        ``restart_file=True`` its progress is discarded (no GridFTP
        restart markers), otherwise the remaining bytes are picked up
        where the failed channel left off.
        """
        if channel not in self.channels:
            raise ValueError("channel is not open on this engine")
        if restart_file and channel.current is not None:
            channel.current.remaining = float(channel.current.file.size)
        self.close_channel(channel)
        self.channel_failures += 1
        self._log_event("channel_failed",
                        chunk=channel.chunk_name, restart_file=restart_file)

    def fail_server(
        self,
        side: str,
        index: int,
        *,
        downtime: float = 60.0,
        restart_files: bool = False,
        reopen: bool = True,
    ) -> int:
        """Take one transfer server down for ``downtime`` seconds.

        Every channel bound to it fails (files requeued); with
        ``reopen=True`` the client immediately reconnects the same
        number of channels on the surviving servers, as a real transfer
        client would. Returns the number of channels that failed.
        """
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        count = (self.source if side == "src" else self.destination).server_count
        if not (0 <= index < count):
            raise ValueError(f"server index {index} out of range")
        if downtime <= 0:
            raise ValueError("downtime must be > 0")
        attr = "src_server" if side == "src" else "dst_server"
        victims = [c for c in self.channels if getattr(c, attr) == index]
        self._down_servers[(side, index)] = self.time + downtime
        if not self._available_servers(side):
            # cannot operate with every server down; undo and refuse
            del self._down_servers[(side, index)]
            raise RuntimeError("cannot fail the last available server")
        by_chunk: dict[str, int] = {}
        for channel in victims:
            by_chunk[channel.chunk_name] = by_chunk.get(channel.chunk_name, 0) + 1
            if restart_files and channel.current is not None:
                channel.current.remaining = float(channel.current.file.size)
            self.close_channel(channel)
        self.server_failures += 1
        self._log_event("server_failed", side=side, index=index,
                        downtime=downtime, channels_lost=len(victims))
        if reopen:
            for chunk_name, n in by_chunk.items():
                for _ in range(n):
                    self.open_channel(chunk_name)
        return len(victims)

    @property
    def down_servers(self) -> dict[tuple[str, int], float]:
        """Currently failed servers and their recovery times."""
        return dict(self._down_servers)

    def _recover_servers(self) -> None:
        for key, until in list(self._down_servers.items()):
            if self.time >= until:
                del self._down_servers[key]
                self._log_event("server_recovered", side=key[0], index=key[1])

    def _log_event(self, kind: str, **detail) -> None:
        if self.record_events:
            self.events.append(EngineEvent(time=self.time, kind=kind, detail=detail))

    @property
    def active_channel_count(self) -> int:
        return sum(1 for c in self.channels if c.busy or not self._queue_empty_for(c))

    # ------------------------------------------------------------------
    # progress accounting
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when every file of every chunk has fully transferred."""
        return all(s.exhausted for s in self.chunks.values()) and not any(
            c.busy for c in self.channels
        )

    @property
    def total_planned_bytes(self) -> float:
        return float(sum(s.plan.total_size for s in self.chunks.values()))

    def snapshot(self) -> EngineSnapshot:
        """An immutable (time, bytes, energy, files) measurement point."""
        return EngineSnapshot(
            time=self.time,
            bytes=self.total_bytes,
            energy=self.total_energy,
            files=self.total_files,
        )

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def run(self, duration: Optional[float] = None, *, max_time: float = 1e7) -> float:
        """Advance until completion or for ``duration`` seconds.

        Returns the simulated time that actually elapsed. ``max_time``
        is a safety net against configurations that can never finish.
        """
        start = self.time
        horizon = min(self.time + duration, max_time) if duration is not None else max_time
        while not self.finished and self.time < horizon - 1e-12:
            self.step()
        return self.time - start

    def step(self) -> None:
        """Advance the simulation one ``dt`` step."""
        self._recover_servers()
        self._assign_work()
        busy = [c for c in self.channels if c.busy]
        rates = self._allocate_rates(busy)

        total_streams = sum(c.parallelism for c in busy)
        step_loss = tcp.loss_fraction(self.path, total_streams)
        wire_factor = (1.0 + self.path.header_overhead) / max(1e-9, 1.0 - step_loss)

        moved_per_server_src: dict[int, float] = {}
        moved_per_server_dst: dict[int, float] = {}
        for channel in busy:
            queue = self._effective_queue(channel)
            outcome = channel.advance(rates.get(id(channel), 0.0), self.dt, queue)
            state = self.chunks[channel.chunk_name]
            state.bytes_done += outcome.bytes_moved
            state.files_done += outcome.files_completed
            self.total_bytes += outcome.bytes_moved
            self.total_wire_bytes += outcome.bytes_moved * wire_factor
            self.total_files += outcome.files_completed
            if self.record_events and outcome.files_completed:
                self._log_event(
                    "file_completed",
                    chunk=channel.chunk_name,
                    count=outcome.files_completed,
                )
                if state.exhausted and channel.chunk_name not in self._drained_logged:
                    self._drained_logged.add(channel.chunk_name)
                    self._log_event("chunk_drained", chunk=channel.chunk_name)
            moved_per_server_src[channel.src_server] = (
                moved_per_server_src.get(channel.src_server, 0.0) + outcome.bytes_moved
            )
            moved_per_server_dst[channel.dst_server] = (
                moved_per_server_dst.get(channel.dst_server, 0.0) + outcome.bytes_moved
            )

        power = self._instant_power(busy, moved_per_server_src, moved_per_server_dst)
        self.total_energy += power * self.dt
        self.time += self.dt

        if self.record_trace:
            step_throughput = (
                sum(moved_per_server_src.values()) / self.dt if moved_per_server_src else 0.0
            )
            self.trace.append(
                StepRecord(
                    time=self.time,
                    throughput=step_throughput,
                    power=power,
                    active_channels=len(busy),
                )
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _queue_empty_for(self, channel: Channel) -> bool:
        return not self.chunks[channel.chunk_name].queue

    def _effective_queue(self, channel: Channel) -> deque[FileProgress]:
        """The queue a channel draws from (its current chunk's)."""
        return self.chunks[channel.chunk_name].queue

    def _assign_work(self) -> None:
        """Give every idle channel a file before allocating rates.

        With work stealing on, an idle channel whose own chunk has
        drained is *re-allocated* to the chunk with the most remaining
        bytes — it adopts that chunk's pipelining and parallelism, just
        as the custom GridFTP client reopens a freed channel against a
        different chunk (the paper's multi-chunk mechanism).
        """
        for channel in self.channels:
            if channel.busy:
                continue
            own = self.chunks[channel.chunk_name].queue
            if not own and self.work_stealing:
                candidates = [s for s in self.chunks.values() if s.queue]
                if candidates:
                    target = max(
                        candidates, key=lambda s: sum(fp.remaining for fp in s.queue)
                    )
                    self._log_event(
                        "channel_reassigned",
                        from_chunk=channel.chunk_name,
                        to_chunk=target.plan.name,
                    )
                    channel.chunk_name = target.plan.name
                    channel.parallelism = max(1, target.plan.params.parallelism)
                    channel.pipelining = max(1, target.plan.params.pipelining)
                    own = target.queue
            channel.take_from(own)

    def _allocate_rates(self, busy: Sequence[Channel]) -> dict[int, float]:
        """Max-min fair (progressive-filling) rate allocation.

        Individual caps: buffer-limited TCP for the channel's stream
        count, host per-stream processing on both endpoints. Shared
        capacities: link aggregate goodput (congestion knee), and each
        server's NIC rate and disk aggregate.
        """
        if not busy:
            return {}
        src_spec = self.source.server
        dst_spec = self.destination.server

        caps: dict[int, float] = {}
        for c in busy:
            caps[id(c)] = min(
                tcp.channel_network_cap(self.path, c.parallelism),
                src_spec.per_channel_rate,
                dst_spec.per_channel_rate,
            )

        total_streams = sum(c.parallelism for c in busy)
        if self.background_traffic is not None:
            competing = max(0.0, self.background_traffic(self.time))
            shared = tcp.aggregate_goodput(self.path, total_streams + competing)
            link_capacity = shared * total_streams / (total_streams + competing)
        else:
            link_capacity = tcp.aggregate_goodput(self.path, total_streams)
        groups: list[tuple[float, list[int]]] = [
            (link_capacity, [id(c) for c in busy])
        ]
        for side, spec, attr in (
            ("src", src_spec, "src_server"),
            ("dst", dst_spec, "dst_server"),
        ):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_channels in by_server.values():
                capacity = min(
                    spec.nic_rate,
                    spec.disk.aggregate_capacity(len(server_channels)),
                )
                groups.append((capacity, [id(c) for c in server_channels]))

        # TCP fairness is per *stream*, so a channel carrying p parallel
        # streams claims p shares of any shared capacity.
        weights = {id(c): float(c.parallelism) for c in busy}
        return _max_min_fill(caps, groups, weights)

    def _instant_power(
        self,
        busy: Sequence[Channel],
        moved_src: dict[int, float],
        moved_dst: dict[int, float],
    ) -> float:
        """Total load-dependent watts across both sites right now."""
        power = 0.0
        for site, moved, attr in (
            (self.source, moved_src, "src_server"),
            (self.destination, moved_dst, "dst_server"),
        ):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_idx, server_channels in by_server.items():
                throughput = moved.get(server_idx, 0.0) / self.dt
                util = compute_utilization(
                    site.server,
                    channels=len(server_channels),
                    streams=sum(c.parallelism for c in server_channels),
                    throughput=throughput,
                )
                power += self.power_model(site.server, util)
                if self._component_fn is not None:
                    for name, watts in self._component_fn(site.server, util).items():
                        self.component_energy[name] = (
                            self.component_energy.get(name, 0.0) + watts * self.dt
                        )
        return power

    def server_utilizations(self) -> dict[str, Utilization]:
        """Current utilization per active server (for inspection/tests)."""
        result: dict[str, Utilization] = {}
        busy = [c for c in self.channels if c.busy]
        for site, attr in ((self.source, "src_server"), (self.destination, "dst_server")):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_idx, server_channels in by_server.items():
                result[f"{site.name}[{server_idx}]"] = compute_utilization(
                    site.server,
                    channels=len(server_channels),
                    streams=sum(c.parallelism for c in server_channels),
                    throughput=0.0,
                )
        return result


def _max_min_fill(
    caps: dict[int, float],
    groups: Iterable[tuple[float, list[int]]],
    weights: Optional[dict[int, float]] = None,
) -> dict[int, float]:
    """Weighted progressive filling: raise all unfrozen flows at rates
    proportional to their weights, freezing flows as they hit their
    individual cap or exhaust a shared group capacity. Weighted max-min
    fairness; terminates because each round freezes at least one flow
    or one group."""
    if weights is None:
        weights = {k: 1.0 for k in caps}
    rates = {k: 0.0 for k in caps}
    remaining = [(capacity, list(members)) for capacity, members in groups]
    active = set(caps)
    eps = 1e-9

    while active:
        # `increment` is the common per-unit-weight raise this round.
        increment = min((caps[k] - rates[k]) / weights[k] for k in active)
        for capacity, members in remaining:
            live_weight = sum(weights[m] for m in members if m in active)
            if live_weight > 0:
                increment = min(increment, capacity / live_weight)
        if increment <= eps:
            break
        for k in active:
            rates[k] += increment * weights[k]
        new_remaining = []
        frozen: set[int] = set()
        for capacity, members in remaining:
            live = [m for m in members if m in active]
            capacity -= increment * sum(weights[m] for m in live)
            if capacity <= eps:
                frozen.update(live)
            new_remaining.append((capacity, members))
        remaining = new_remaining
        for k in list(active):
            if k in frozen or rates[k] >= caps[k] - eps:
                active.discard(k)
    return rates
