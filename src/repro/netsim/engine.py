"""Fluid-flow transfer engine.

The engine advances a set of live data channels in fixed time steps
(default 0.25 s). Each step it

1. solves a **max-min fair rate allocation** for all busy channels,
   subject to per-channel caps (buffer-limited TCP, host per-stream
   processing) and shared capacities (link goodput with the congestion
   knee, per-server NIC and disk aggregates);
2. advances every channel's file/gap state machine by the step;
3. converts each server's carried load into component utilizations and
   integrates the supplied power model into joules.

On top of the fixed-``dt`` stepper sits an **event-horizon fast path**
(:meth:`TransferEngine.run` with ``fast_path=True``, the default): when
the channel/queue/failure configuration is stable, the engine computes
the time to the next state change — the earliest file completion that
could change the rate allocation, the next server recovery, the next
background-traffic change point, or the caller's horizon — and advances
bytes and energy analytically in one macro-step at the frozen rate
vector, quantized to the ``dt`` grid. Around events it falls back to
fixed-``dt`` stepping, so results are numerically equivalent to the
pure stepper (see DESIGN.md, "Fast path / fixed-dt duality": bytes and
durations agree to floating-point round-off, energy to <=1e-3 relative
because power inside a macro-step is integrated at the interval-average
throughput).

Everything is deterministic; the adaptive algorithms of the paper
(HTEE's probe phase, SLAEE's feedback loop) interact with a running
engine through :meth:`TransferEngine.run` (bounded horizons) and
:meth:`TransferEngine.set_chunk_channels` (live re-allocation), exactly
the control surface the custom GridFTP client exposes.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence
from typing import Optional, Union

import numpy as np

from repro.datasets.files import FileInfo
from repro.netsim import tcp
from repro.netsim.channel import Channel, FileProgress
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.netsim.utilization import Utilization, compute_utilization
from repro.units import Bytes, BytesPerSecond, Joules, Seconds, Watts

__all__ = [
    "Binding",
    "ChunkPlan",
    "ChunkState",
    "EngineEvent",
    "EngineSnapshot",
    "PiecewiseTraffic",
    "StepRecord",
    "TransferEngine",
    "PowerFn",
]

#: Signature of the pluggable end-system power model: watts drawn by a
#: server of the given spec at the given utilization (load-dependent part).
PowerFn = Callable[[ServerSpec, Utilization], Watts]

#: Minimum number of repeated ``+= dt`` additions worth batching into a
#: single :func:`accumulate_times` pass — below this the array setup
#: costs more than the Python loop it replaces.
ACCUM_VECTOR_MIN = 32

#: Completion-walk caps for :meth:`TransferEngine.count_stable_steps`:
#: the scalar walk checks at most ``_COUNT_WALK_CAP`` completion times,
#: and queues at least ``_COUNT_WALK_VECTOR_MIN`` deep take the
#: vectorized walk instead of the per-file Python loop.
_COUNT_WALK_CAP = 512
_COUNT_WALK_VECTOR_MIN = 16


def accumulate_times(t0: float, dt: Seconds, k: int) -> np.ndarray:
    """The ``k`` running sums of ``t0 += dt`` as one array op.

    ``np.add.accumulate`` on float64 folds strictly left-to-right, so
    every partial sum — and in particular the final element — is
    bit-equal to ``k`` repeated Python ``+= dt`` additions. (Float
    addition is not associative: ``t0 + k * dt`` would drift off the
    grid the fixed stepper walks.)
    """
    steps = np.empty(k + 1)
    steps[0] = t0
    steps[1:] = dt
    return np.add.accumulate(steps)[1:]


class Binding(enum.Enum):
    """How new channels are bound to a site's transfer servers.

    ``PACK`` is the paper's custom GridFTP client behaviour (all
    channels on one node, keeping the other nodes asleep); ``SPREAD``
    is Globus Online / globus-url-copy behaviour (round-robin across
    every node, waking all of them).
    """

    PACK = "pack"
    SPREAD = "spread"


@dataclass(frozen=True)
class PiecewiseTraffic:
    """Piecewise-constant background-traffic profile.

    ``points`` is a sorted sequence of ``(start_time, competing_streams)``
    plateaus; the value at time ``t`` is the last plateau whose start is
    ``<= t`` (0 before the first). Unlike an opaque callable, this
    profile exposes :meth:`next_change`, so the engine's event-horizon
    fast path can jump analytically between plateaus instead of
    sampling every fixed step. Opaque callables remain fully supported
    — the engine simply keeps fixed-``dt`` stepping for them.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise ValueError("PiecewiseTraffic points must be sorted by time")
        if any(v < 0 for _, v in self.points):
            raise ValueError("competing stream counts must be >= 0")

    def __call__(self, t: Seconds) -> float:
        """Competing stream count at simulated time ``t`` (seconds)."""
        idx = bisect_right(self.points, (t, math.inf)) - 1
        return self.points[idx][1] if idx >= 0 else 0.0

    def next_change(self, t: Seconds) -> Seconds:
        """Time (seconds) of the next plateau boundary strictly after
        ``t`` (``inf`` once past the last one)."""
        idx = bisect_right(self.points, (t, math.inf))
        return self.points[idx][0] if idx < len(self.points) else math.inf


@dataclass(frozen=True)
class ChunkPlan:
    """A chunk as planned by a transfer algorithm: files + parameters.

    ``params.concurrency`` is the *initial* channel count; adaptive
    algorithms change it later through the engine.
    """

    name: str
    files: tuple[FileInfo, ...]
    params: TransferParams

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chunk name must be non-empty")

    @property
    def total_size(self) -> int:
        return sum(f.size for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)


@dataclass
class ChunkState:
    """Live transfer state of one chunk inside the engine."""

    plan: ChunkPlan
    queue: deque[FileProgress]
    bytes_done: float = 0.0
    files_done: int = 0
    #: Monotone lower bound on the smallest ``remaining`` of any queued
    #: file — set from the plan at registration, lowered whenever a
    #: partially-transferred file is requeued, never raised. Staleness
    #: is safe: the fast path uses it to *under*-estimate future file
    #: sizes, which only makes its event horizon more conservative.
    min_queued_lb: float = math.inf

    @property
    def remaining_bytes(self) -> float:
        queued = sum(fp.remaining for fp in self.queue)
        return queued  # in-flight remainders are tracked by channels

    @property
    def exhausted(self) -> bool:
        return not self.queue


@dataclass(frozen=True)
class EngineSnapshot:
    """A point-in-time measurement used by adaptive controllers.

    Fields carry the engine's internal units: ``time`` in seconds,
    ``bytes`` in bytes, ``energy`` in joules.
    """

    time: Seconds
    bytes: Bytes
    energy: Joules
    files: int

    def throughput_since(self, earlier: "EngineSnapshot") -> BytesPerSecond:
        """Mean payload rate (bytes/s) since ``earlier`` (0 if no time passed)."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return (self.bytes - earlier.bytes) / dt

    def energy_since(self, earlier: "EngineSnapshot") -> Joules:
        """Joules accumulated since ``earlier``."""
        return self.energy - earlier.energy


@dataclass(frozen=True)
class StepRecord:
    """Optional per-step trace entry (enable with ``record_trace=True``).

    Under the fast path, records inside a macro-step are synthesized at
    the interval-average throughput/power (still one record per ``dt``).
    ``time`` is in seconds, ``throughput`` in bytes/s, ``power`` in
    watts.
    """

    time: Seconds
    throughput: BytesPerSecond
    power: Watts
    active_channels: int


@dataclass(frozen=True)
class EngineEvent:
    """One entry of the structured event log (``record_events=True``).

    ``kind`` is one of: ``channel_opened``, ``channel_closed``,
    ``channel_reassigned``, ``channel_failed``, ``server_failed``,
    ``server_recovered``, ``chunk_drained``, ``file_completed``.
    ``detail`` carries the kind-specific facts (chunk, servers, file).

    Causal ordering is guaranteed: a ``channel_failed`` precedes the
    ``channel_closed`` it causes, and a ``server_failed`` precedes the
    closures (and reconnections) it triggers. ``time`` is the simulated
    time in seconds.
    """

    time: Seconds
    kind: str
    detail: dict


class TransferEngine:
    """Simulates one end-to-end transfer job between two sites."""

    def __init__(
        self,
        path: NetworkPath,
        source: EndSystem,
        destination: EndSystem,
        power_model: PowerFn,
        *,
        dt: Seconds = 0.25,
        binding: Binding = Binding.PACK,
        work_stealing: bool = True,
        record_trace: bool = False,
        record_events: bool = False,
        background_traffic: Union[Callable[[float], float], float, None] = None,
        fast_path: bool = True,
        observer=None,
    ) -> None:
        """``background_traffic`` (optional) maps simulated time to the
        number of competing TCP streams sharing the path (a plain
        number is treated as a constant profile — see
        :meth:`set_background_streams`). The link is
        divided per-stream (TCP fairness), so the transfer's share is
        ``ours / (ours + competing)`` of the aggregate goodput — which
        is exactly why opening more channels/streams claws bandwidth
        back from cross-traffic, and how the adaptive algorithms are
        exercised against changing network conditions.

        ``fast_path`` enables the event-horizon macro-stepper used by
        :meth:`run` (``step`` always performs one fixed-``dt`` step).
        Pass a :class:`PiecewiseTraffic` (or any callable exposing
        ``next_change(t)``) as ``background_traffic`` to keep the fast
        path active under cross-traffic; opaque callables silently
        disable it (the engine then behaves exactly like the fixed
        stepper).

        ``observer`` (optional, a :class:`repro.obs.Observer`) receives
        structured events — allocation changes, work-stealing
        adoptions, failures/recoveries, macro-steps vs fixed-``dt``
        fallback stretches — and metric updates. With ``observer=None``
        (the default) every instrumentation site reduces to one
        ``is not None`` check and the engine allocates nothing extra
        per step (the zero-cost guarantee DESIGN.md documents)."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.path = path
        self.source = source
        self.destination = destination
        self.power_model = power_model
        self.dt = dt
        self.binding = binding
        self.work_stealing = work_stealing
        self.record_trace = record_trace
        self.record_events = record_events
        self.background_traffic = background_traffic
        self.fast_path = fast_path
        self.observer = observer
        #: Fixed steps taken since the last macro-step while an observer
        #: is attached (coalesced into one ``fixed_dt_fallback`` event).
        self._fallback_steps = 0

        self.time = 0.0
        self.total_bytes = 0.0
        #: Bytes the network actually carried: payload + framing
        #: headers + retransmitted segments under congestion loss.
        self.total_wire_bytes = 0.0
        self.total_energy = 0.0
        self.total_files = 0
        self.trace: list[StepRecord] = []
        #: Structured event log (populated when ``record_events``).
        self.events: list[EngineEvent] = []
        self._drained_logged: set[str] = set()
        self.chunks: dict[str, ChunkState] = {}
        #: Chunks registered via :meth:`submit_chunk` whose planned
        #: channels have not been opened yet (deferred admission).
        self._pending_admission: list[str] = []
        #: Open channels, insertion-ordered (id(channel) -> channel).
        #: O(1) membership/removal; the public ``channels`` property
        #: materializes the ordered list.
        self._channels: dict[int, Channel] = {}
        #: Per-chunk channel registry (chunk name -> ordered channels),
        #: kept in sync by open/close/reassign.
        self._by_chunk: dict[str, list[Channel]] = {}
        #: Memoized rate allocations, keyed on the busy-channel
        #: signature (see :meth:`_allocate_rates`); invalidated on any
        #: open/close/reassign/failure.
        self._alloc_cache: dict = {}
        self._spread_counter = 0
        #: Servers currently failed, mapped to their recovery time.
        self._down_servers: dict[tuple[str, int], float] = {}
        #: Link brownout factor applied to the shared aggregate goodput
        #: (1.0 = healthy; see :meth:`set_link_scale`).
        self._link_scale = 1.0
        #: Topology-imposed aggregate rate cap (bytes/s) on this
        #: engine's flow, or ``None`` when uncoupled (see
        #: :meth:`set_capacity_cap`).
        self._capacity_cap: Optional[float] = None
        #: Counters for post-mortem inspection.
        self.channel_failures = 0
        self.server_failures = 0
        #: Macro-steps taken / fixed steps taken (perf introspection).
        self.macro_steps = 0
        self.fixed_steps = 0
        #: Joules attributed per component (cpu/memory/disk/nic), filled
        #: when the power model exposes ``power_components`` (the
        #: fine-grained Eq. 1 model does).
        self.component_energy: dict[str, float] = {}
        owner = getattr(power_model, "__self__", None)
        self._component_fn = getattr(owner, "power_components", None)

    # ------------------------------------------------------------------
    # setup / channel management
    # ------------------------------------------------------------------

    @property
    def channels(self) -> list[Channel]:
        """The open channels, in opening order."""
        return list(self._channels.values())

    def add_chunk(self, plan: ChunkPlan, *, open_channels: bool = True) -> ChunkState:
        """Register a chunk; optionally open its planned channels.

        Files are queued largest-first (longest-processing-time order),
        the standard makespan heuristic — it prevents a many-gigabyte
        file landing on a single channel as the very last item while
        every other channel idles.
        """
        if plan.name in self.chunks:
            raise ValueError(f"duplicate chunk name: {plan.name!r}")
        ordered = sorted(plan.files, key=lambda f: f.size, reverse=True)
        state = ChunkState(
            plan=plan,
            queue=deque(FileProgress.fresh(f) for f in ordered),
            min_queued_lb=float(ordered[-1].size) if ordered else math.inf,
        )
        self.chunks[plan.name] = state
        if open_channels:
            for _ in range(plan.params.concurrency):
                self.open_channel(plan.name)
        return state

    def submit_chunk(self, plan: ChunkPlan) -> ChunkState:
        """Register a chunk whose channels open later (deferred admission).

        The public form of "queue a job before it is admitted": the
        chunk's files are registered immediately (so ``finished`` and
        byte accounting see them) but no channel opens — and therefore
        no energy accrues — until :meth:`admit_pending` runs. Used by
        :class:`~repro.netsim.multi.MultiTransferSimulator` and the
        service layer for admission-controlled workloads.
        """
        state = self.add_chunk(plan, open_channels=False)
        self._pending_admission.append(plan.name)
        return state

    @property
    def pending_chunks(self) -> list[str]:
        """Names of submitted chunks still awaiting admission."""
        return list(self._pending_admission)

    def admit_pending(self) -> int:
        """Open the planned channels of every pending chunk.

        Returns the number of channels opened. Idempotent once the
        pending set is drained.
        """
        opened = 0
        for name in self._pending_admission:
            concurrency = self.chunks[name].plan.params.concurrency
            self.set_chunk_channels(name, concurrency)
            opened += concurrency
        self._pending_admission.clear()
        return opened

    def set_background_streams(self, streams: float) -> None:
        """Set a constant competing-stream count without closure churn.

        Coordinators that recompute cross-traffic every step (e.g. the
        multi-transfer simulator dividing one link between jobs) would
        otherwise allocate a fresh closure per job per step; a plain
        number is stored as-is, participates in the allocation memo via
        its value, and — being constant between calls — never disables
        the event-horizon fast path.
        """
        if streams < 0:
            raise ValueError("competing stream count must be >= 0")
        self.background_traffic = float(streams)

    def _competing_streams(self) -> float:
        """The competing stream count at the current time (numbers and
        callables both supported as ``background_traffic``)."""
        bg = self.background_traffic
        if bg is None:
            return 0.0
        if callable(bg):
            return max(0.0, bg(self.time))
        return max(0.0, float(bg))

    def _available_servers(self, side: str) -> list[int]:
        count = (self.source if side == "src" else self.destination).server_count
        return [i for i in range(count) if (side, i) not in self._down_servers]

    def open_channel(self, chunk_name: str) -> Channel:
        """Open one new data channel serving ``chunk_name``.

        Server choice honors the binding strategy but skips servers
        currently marked failed.
        """
        plan = self.chunks[chunk_name].plan
        src_avail = self._available_servers("src")
        dst_avail = self._available_servers("dst")
        if not src_avail or not dst_avail:
            raise RuntimeError("no available transfer server to open a channel on")
        if self.binding is Binding.PACK:
            src, dst = src_avail[0], dst_avail[0]
        else:
            src = src_avail[self._spread_counter % len(src_avail)]
            dst = dst_avail[self._spread_counter % len(dst_avail)]
            self._spread_counter += 1
        channel = Channel(
            chunk_name=chunk_name,
            parallelism=plan.params.parallelism,
            pipelining=plan.params.pipelining,
            src_server=src,
            dst_server=dst,
            rtt=self.path.rtt,
            file_overhead=(
                self.source.server.per_file_overhead
                + self.destination.server.per_file_overhead
            ),
        )
        self._channels[id(channel)] = channel
        self._by_chunk.setdefault(chunk_name, []).append(channel)
        self._alloc_cache.clear()
        self._log_event("channel_opened",
                        chunk=chunk_name, src_server=src, dst_server=dst)
        return channel

    def close_channel(self, channel: Channel) -> None:
        """Close a channel, returning any in-flight file to its queue."""
        state = self.chunks[channel.chunk_name]
        if channel.current is not None:
            state.min_queued_lb = min(state.min_queued_lb, channel.current.remaining)
        channel.release_to(state.queue)
        del self._channels[id(channel)]
        self._by_chunk[channel.chunk_name].remove(channel)
        self._alloc_cache.clear()
        self._log_event("channel_closed", chunk=channel.chunk_name)

    def channels_for(self, chunk_name: str) -> list[Channel]:
        """The channels currently assigned to ``chunk_name``."""
        return list(self._by_chunk.get(chunk_name, ()))

    def set_chunk_channels(self, chunk_name: str, count: int) -> None:
        """Grow or shrink a chunk's channel set to exactly ``count``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        current = self.channels_for(chunk_name)
        for channel in current[count:]:
            self.close_channel(channel)
        for _ in range(count - len(current)):
            self.open_channel(chunk_name)

    def set_allocation(self, allocation: dict[str, int]) -> None:
        """Apply a full chunk -> channel-count allocation at once.

        Emits exactly one ``allocation_change`` observability event per
        call (not one per chunk), so adaptive controllers can replay
        their decision history from the event stream.
        """
        for chunk_name, count in allocation.items():
            self.set_chunk_channels(chunk_name, count)
        if self.observer is not None:
            self.observer.allocation_change(self.time, dict(allocation))

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def fail_channel(self, channel: Channel, *, restart_file: bool = False) -> None:
        """Kill one data channel (connection reset, process crash).

        The in-flight file returns to its chunk's queue; with
        ``restart_file=True`` its progress is discarded (no GridFTP
        restart markers), otherwise the remaining bytes are picked up
        where the failed channel left off. The ``channel_failed`` event
        is logged before the ``channel_closed`` it causes.
        """
        if id(channel) not in self._channels:
            raise ValueError("channel is not open on this engine")
        if restart_file and channel.current is not None:
            channel.current.remaining = float(channel.current.file.size)
        self.channel_failures += 1
        self._log_event("channel_failed",
                        chunk=channel.chunk_name, restart_file=restart_file)
        self.close_channel(channel)

    def fail_server(
        self,
        side: str,
        index: int,
        *,
        downtime: Seconds = 60.0,
        restart_files: bool = False,
        reopen: bool = True,
    ) -> int:
        """Take one transfer server down for ``downtime`` seconds.

        Every channel bound to it fails (files requeued); with
        ``reopen=True`` the client immediately reconnects the same
        number of channels on the surviving servers, as a real transfer
        client would. Returns the number of channels that failed. The
        ``server_failed`` event precedes the channel closures (and
        reconnections) it triggers.
        """
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        count = (self.source if side == "src" else self.destination).server_count
        if not (0 <= index < count):
            raise ValueError(f"server index {index} out of range")
        if downtime <= 0:
            raise ValueError("downtime must be > 0")
        attr = "src_server" if side == "src" else "dst_server"
        victims = [c for c in self._channels.values() if getattr(c, attr) == index]
        self._down_servers[(side, index)] = self.time + downtime
        if not self._available_servers(side):
            # cannot operate with every server down; undo and refuse
            del self._down_servers[(side, index)]
            raise RuntimeError("cannot fail the last available server")
        self.server_failures += 1
        self._log_event("server_failed", side=side, index=index,
                        downtime=downtime, channels_lost=len(victims))
        by_chunk: dict[str, int] = {}
        for channel in victims:
            by_chunk[channel.chunk_name] = by_chunk.get(channel.chunk_name, 0) + 1
            if restart_files and channel.current is not None:
                channel.current.remaining = float(channel.current.file.size)
            self.close_channel(channel)
        if reopen:
            for chunk_name, n in by_chunk.items():
                for _ in range(n):
                    self.open_channel(chunk_name)
        return len(victims)

    def mark_server_down(
        self, side: str, index: int, *, until: Seconds
    ) -> None:
        """Register a server as failed until engine time ``until``
        without touching any channels.

        The channel-churning path is :meth:`fail_server`; this is the
        bookkeeping-only form used when an engine is admitted *during*
        an outage injected at the coordinator level — it has no
        channels to fail yet, but must still avoid the down server
        until the shared recovery time. Extending an existing outage
        keeps the later recovery time.
        """
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        count = (self.source if side == "src" else self.destination).server_count
        if not (0 <= index < count):
            raise ValueError(f"server index {index} out of range")
        if until <= self.time:
            return  # already recovered in this engine's clock
        prior = self._down_servers.get((side, index))
        self._down_servers[(side, index)] = (
            until if prior is None else max(prior, until)
        )
        if not self._available_servers(side):
            if prior is None:
                del self._down_servers[(side, index)]
            else:
                self._down_servers[(side, index)] = prior
            raise RuntimeError("cannot fail the last available server")
        if prior is None:
            self._log_event(
                "server_failed", side=side, index=index,
                downtime=until - self.time, channels_lost=0,
            )

    @property
    def link_scale(self) -> float:
        """Current brownout factor on the link's aggregate goodput."""
        return self._link_scale

    def set_link_scale(self, scale: float) -> None:
        """Scale the shared link capacity (brownout injection).

        ``scale`` multiplies the aggregate-goodput term of
        :meth:`_allocate_rates` (per-channel and per-server caps are
        end-system properties and stay untouched). The allocation memo
        is invalidated here, and the value is constant between calls,
        so the event-horizon fast path stays bit-consistent with the
        fixed stepper — exactly the contract
        :meth:`set_background_streams` follows.
        """
        if scale <= 0:
            raise ValueError(f"link scale must be > 0, got {scale}")
        if scale != self._link_scale:
            self._link_scale = float(scale)
            self._alloc_cache.clear()
            self._log_event("link_scaled", scale=scale)

    @property
    def capacity_cap(self) -> Optional[float]:
        """Topology-imposed aggregate rate cap (bytes/s), or ``None``."""
        return self._capacity_cap

    def set_capacity_cap(self, cap: Optional[float]) -> None:
        """Cap this flow's share of the network (topology coupling).

        A coordinator running flows over a shared
        :class:`~repro.topo.core.Topology` water-fills each bottleneck
        per round and imposes the flow's network-wide share here: the
        cap clamps the shared link-capacity term of
        :meth:`_allocate_rates` (per-channel and per-server caps are
        end-system properties and stay untouched). Unlike
        ``link_scale`` the cap changes round to round, so its value is
        part of the allocation memo signature rather than a
        cache-clearing event — two rounds at the same cap and busy set
        still hit the memo.
        """
        if cap is not None and cap < 0:
            raise ValueError(f"capacity cap must be >= 0, got {cap}")
        self._capacity_cap = None if cap is None else float(cap)

    def demand_rate(self) -> float:
        """The flow's uncapped aggregate demand (bytes/s).

        What the busy channels would jointly carry if the topology
        imposed no cap — the demand this flow registers on the
        bottlenecks along its path. Served by the same memoized
        allocator the steppers use (with the cap masked, under its own
        memo signature), so repeated calls at an unchanged
        configuration are cache hits.
        """
        busy = [c for c in self._channels.values() if c.busy]
        if not busy:
            return 0.0
        saved = self._capacity_cap
        self._capacity_cap = None
        try:
            rates = self._allocate_rates(busy)
        finally:
            self._capacity_cap = saved
        return sum(rates.values())

    @property
    def down_servers(self) -> dict[tuple[str, int], Seconds]:
        """Currently failed servers and their recovery times (seconds)."""
        return dict(self._down_servers)

    def _recover_servers(self) -> None:
        for key, until in list(self._down_servers.items()):
            if self.time >= until:
                del self._down_servers[key]
                self._log_event("server_recovered", side=key[0], index=key[1])

    def _log_event(self, kind: str, **detail) -> None:
        if self.record_events:
            self.events.append(EngineEvent(time=self.time, kind=kind, detail=detail))
        if self.observer is not None:
            self.observer.engine_event(self.time, kind, detail)

    @property
    def active_channel_count(self) -> int:
        return sum(
            1 for c in self._channels.values() if c.busy or not self._queue_empty_for(c)
        )

    # ------------------------------------------------------------------
    # progress accounting
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when every file of every chunk has fully transferred."""
        return all(s.exhausted for s in self.chunks.values()) and not any(
            c.busy for c in self._channels.values()
        )

    @property
    def total_planned_bytes(self) -> Bytes:
        """Total payload registered across all chunks, in bytes."""
        return float(sum(s.plan.total_size for s in self.chunks.values()))

    def snapshot(self) -> EngineSnapshot:
        """An immutable (time, bytes, energy, files) measurement point."""
        return EngineSnapshot(
            time=self.time,
            bytes=self.total_bytes,
            energy=self.total_energy,
            files=self.total_files,
        )

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def run(
        self,
        duration: Optional[Seconds] = None,
        *,
        max_time: Seconds = 1e7,
        until: Optional[Callable[[], bool]] = None,
    ) -> Seconds:
        """Advance until completion or for ``duration`` seconds.

        Returns the simulated time that actually elapsed. ``max_time``
        is a safety net against configurations that can never finish.
        ``until`` (optional) is an extra stop predicate evaluated
        between steps — the loop ends as soon as it returns True.

        With ``fast_path`` enabled, stable stretches are advanced in
        macro-steps (see the module docstring). ``until`` is evaluated
        between fast-path iterations: predicates watching
        allocation-changing events — queue drains, channels leaving the
        busy set, failures/recoveries, traffic change points — are
        honored at the same ``dt`` granularity as fixed stepping
        (those events bound every macro-step), while predicates on
        finer-grained state (e.g. per-file counters mid-queue) may
        overshoot by up to one macro-step. Controllers needing
        sub-second sampling should call ``run(duration=...)`` with the
        sampling window instead.
        """
        start = self.time
        observer = self.observer
        fixed_before = self.fixed_steps
        horizon = min(self.time + duration, max_time) if duration is not None else max_time
        if self.fast_path:
            while (
                not self.finished
                and self.time < horizon - 1e-12
                and not (until is not None and until())
            ):
                self._fast_step(horizon)
        else:
            while (
                not self.finished
                and self.time < horizon - 1e-12
                and not (until is not None and until())
            ):
                self.step()
        if observer is not None:
            observer.note_steps(self.fixed_steps - fixed_before)
            if self._fallback_steps:
                # close the trailing fallback stretch at the run boundary
                observer.fixed_fallback(self.time, self._fallback_steps)
                self._fallback_steps = 0
        return self.time - start

    def step(self) -> None:
        """Advance the simulation one fixed ``dt`` step."""
        self._recover_servers()
        self._assign_work()
        busy = [c for c in self._channels.values() if c.busy]
        rates = self._allocate_rates(busy)
        self._advance_fixed(busy, rates)

    def _advance_fixed(self, busy: list[Channel], rates: dict[int, float]) -> None:
        """The fixed-``dt`` step body, after work assignment/allocation."""
        self.fixed_steps += 1
        total_streams = sum(c.parallelism for c in busy)
        step_loss = tcp.loss_fraction(self.path, total_streams)
        wire_factor = (1.0 + self.path.header_overhead) / max(1e-9, 1.0 - step_loss)

        moved_per_server_src: dict[int, float] = {}
        moved_per_server_dst: dict[int, float] = {}
        for channel in busy:
            queue = self._effective_queue(channel)
            outcome = channel.advance(rates.get(id(channel), 0.0), self.dt, queue)
            state = self.chunks[channel.chunk_name]
            state.bytes_done += outcome.bytes_moved
            state.files_done += outcome.files_completed
            self.total_bytes += outcome.bytes_moved
            self.total_wire_bytes += outcome.bytes_moved * wire_factor
            self.total_files += outcome.files_completed
            if outcome.files_completed and (
                self.record_events or self.observer is not None
            ):
                self._log_event(
                    "file_completed",
                    chunk=channel.chunk_name,
                    count=outcome.files_completed,
                )
                if state.exhausted and channel.chunk_name not in self._drained_logged:
                    self._drained_logged.add(channel.chunk_name)
                    self._log_event("chunk_drained", chunk=channel.chunk_name)
            moved_per_server_src[channel.src_server] = (
                moved_per_server_src.get(channel.src_server, 0.0) + outcome.bytes_moved
            )
            moved_per_server_dst[channel.dst_server] = (
                moved_per_server_dst.get(channel.dst_server, 0.0) + outcome.bytes_moved
            )

        power = self._instant_power(
            busy, moved_per_server_src, moved_per_server_dst, self.dt
        )
        self.total_energy += power * self.dt
        self.time += self.dt

        if self.record_trace:
            step_throughput = (
                sum(moved_per_server_src.values()) / self.dt if moved_per_server_src else 0.0
            )
            self.trace.append(
                StepRecord(
                    time=self.time,
                    throughput=step_throughput,
                    power=power,
                    active_channels=len(busy),
                )
            )

    # ------------------------------------------------------------------
    # event-horizon fast path
    # ------------------------------------------------------------------

    def _fast_step(self, horizon: float) -> None:
        """One fast-path iteration: a macro-step across the stable
        stretch when the event horizon allows it, otherwise one exact
        fixed-``dt`` step."""
        self._recover_servers()
        self._assign_work()
        busy = [c for c in self._channels.values() if c.busy]
        rates = self._allocate_rates(busy)
        k = self._stable_steps(busy, rates, horizon)
        observer = self.observer
        if k < 2:
            if observer is not None:
                self._fallback_steps += 1
            self._advance_fixed(busy, rates)
        else:
            if observer is not None:
                if self._fallback_steps:
                    observer.fixed_fallback(self.time, self._fallback_steps)
                    self._fallback_steps = 0
                observer.macro_step(self.time, k, k * self.dt)
            self._advance_macro(busy, rates, k)

    def _stable_steps(
        self, busy: list[Channel], rates: dict[int, float], horizon: float
    ) -> int:
        """How many whole ``dt`` steps can be taken before the next
        event could change the rate allocation (the event horizon).

        Events considered: the earliest possible drain of any non-empty
        chunk queue (a drained chunk idles or re-assigns its channels),
        any file completion on a chunk whose queue is already empty
        (the completing channel leaves the busy set or steals work),
        the next server recovery, the next background-traffic change
        point, and the caller's ``run`` horizon. Returns 0 when the
        fast path must fall back to fixed stepping.
        """
        dt = self.dt
        # Steps the fixed-dt loop would take to reach the horizon.
        steps_cap = max(0, math.ceil((horizon - self.time - 1e-12) / dt))
        if steps_cap < 2:
            return 0
        bg = self.background_traffic
        if bg is None or not callable(bg):
            t_event = math.inf  # none, or a constant stream count
        else:
            next_change = getattr(bg, "next_change", None)
            if next_change is None:
                return 0  # opaque traffic profile: sample every step
            t_event = next_change(self.time) - self.time
        for until in self._down_servers.values():
            t_event = min(t_event, until - self.time)
        cap_time = min(t_event, steps_cap * dt)
        for name, state in self.chunks.items():
            chans = self._by_chunk.get(name)
            if not chans:
                continue
            busy_chans = [c for c in chans if c.busy]
            if not busy_chans:
                continue
            if state.queue:
                t_chunk = self._drain_lower_bound(state, busy_chans, rates, cap_time)
            else:
                t_chunk = min(
                    c.time_to_completion(rates.get(id(c), 0.0)) for c in busy_chans
                )
            cap_time = min(cap_time, t_chunk)
            if cap_time < 2 * dt:
                return 0
        if math.isinf(cap_time):
            return steps_cap
        return min(int((cap_time - 1e-9) // dt), steps_cap)

    @staticmethod
    def _drain_lower_bound(
        state: ChunkState,
        busy_chans: list[Channel],
        rates: dict[int, float],
        cap_time: float,
    ) -> float:
        """A safe lower bound on when ``state``'s queue could empty.

        The queue loses one file per completion on the chunk's
        channels, so its earliest possible drain is the time of the
        L-th completion under the *optimistic* schedule where every
        post-completion file is the smallest one that could still be
        queued (the chunk's maintained ``min_queued_lb``) and every
        channel runs at its allocated rate. For short queues the
        channels' optimistic completion sequences are heap-merged
        exactly; for long ones an O(channels) analytic bound is used:
        by time ``t`` channel ``i`` has completed at most
        ``(t - first_i)/spacing_i + 1`` files, so the L-th completion
        cannot happen before ``min(first) + (L - C) / sum(1/spacing)``.
        """
        queue = state.queue
        pops_needed = len(queue)
        s_min = state.min_queued_lb
        merged: list[tuple[float, float]] = []
        for c in busy_chans:
            rate = rates.get(id(c), 0.0)
            if rate <= 0.0 or c.current is None:
                continue  # stalled channels never complete
            first = c.gap_remaining + c.current.remaining / rate
            merged.append((first, c.per_file_gap + s_min / rate))
        if not merged:
            return math.inf
        if any(spacing <= 0.0 for _, spacing in merged):
            return min(first for first, _ in merged)  # degenerate: free pops
        if pops_needed > 64:
            f_min = min(first for first, _ in merged)
            per_sec = sum(1.0 / spacing for _, spacing in merged)
            return f_min + max(0.0, (pops_needed - len(merged)) / per_sec)
        heapq.heapify(merged)
        t = 0.0
        for _ in range(pops_needed):
            t, spacing = heapq.heappop(merged)
            if t >= cap_time:
                return t
            heapq.heappush(merged, (t + spacing, spacing))
        return t

    def _advance_macro(
        self, busy: list[Channel], rates: dict[int, float], k: int
    ) -> None:
        """Advance ``k`` whole steps analytically at the frozen rates.

        Chunks whose shared queue will be popped inside the interval by
        two or more channels are sub-stepped per ``dt`` (preserving the
        fixed stepper's pop interleaving exactly); every other channel
        is advanced with a single state-machine call, which is exact.
        Energy is integrated once at the interval-average throughput.
        """
        self.macro_steps += 1
        dt = self.dt
        span = k * dt
        total_streams = sum(c.parallelism for c in busy)
        step_loss = tcp.loss_fraction(self.path, total_streams)
        wire_factor = (1.0 + self.path.header_overhead) / max(1e-9, 1.0 - step_loss)

        # Chunks needing dt-granular pop interleaving: >=2 busy channels
        # sharing a queue, with at least one completion inside the span.
        dense_chunks: set[str] = set()
        for name, state in self.chunks.items():
            chans = self._by_chunk.get(name)
            if not chans or not state.queue:
                continue
            busy_chans = [c for c in chans if c.busy]
            if len(busy_chans) < 2:
                continue
            if any(
                c.time_to_completion(rates.get(id(c), 0.0)) <= span
                for c in busy_chans
            ):
                dense_chunks.add(name)

        moved_src: dict[int, float] = {}
        moved_dst: dict[int, float] = {}

        def account(channel: Channel, bytes_moved: float, files_completed: int) -> None:
            state = self.chunks[channel.chunk_name]
            state.bytes_done += bytes_moved
            state.files_done += files_completed
            self.total_bytes += bytes_moved
            self.total_wire_bytes += bytes_moved * wire_factor
            self.total_files += files_completed
            if files_completed and (self.record_events or self.observer is not None):
                self._log_event(
                    "file_completed", chunk=channel.chunk_name, count=files_completed
                )
            moved_src[channel.src_server] = (
                moved_src.get(channel.src_server, 0.0) + bytes_moved
            )
            moved_dst[channel.dst_server] = (
                moved_dst.get(channel.dst_server, 0.0) + bytes_moved
            )

        dense = [c for c in busy if c.chunk_name in dense_chunks]
        for channel in busy:
            if channel.chunk_name in dense_chunks:
                continue
            outcome = channel.advance(
                rates.get(id(channel), 0.0), span, self._effective_queue(channel)
            )
            account(channel, outcome.bytes_moved, outcome.files_completed)
        if dense:
            # Dense chunks need the fixed stepper's queue-pop interleaving
            # preserved: pops only happen at file completions (and the
            # take_from at the following step boundary), so stretches with
            # no completion on any dense channel are advanced in a single
            # exact call, and only the completion steps themselves are
            # replayed at dt granularity in channel order.
            queues = {id(c): self._effective_queue(c) for c in dense}
            crates = {id(c): rates.get(id(c), 0.0) for c in dense}
            acc: dict[int, list] = {id(c): [0.0, 0] for c in dense}
            steps_left = k
            while steps_left > 0:
                jump = steps_left
                for c in dense:
                    if c.current is None:
                        # File-less channel: it would pop (and possibly
                        # finish) a file mid-jump, unseen by the jump
                        # bound. Replay at dt until it holds a file.
                        jump = 0
                        break
                    ttc = c.time_to_completion(crates[id(c)])
                    if math.isinf(ttc):
                        continue
                    j = int(ttc / dt)
                    if j * dt >= ttc:  # land strictly before the completion
                        j -= 1
                    if j < jump:
                        jump = j
                if jump > 0:
                    for c in dense:
                        out = c.advance(crates[id(c)], jump * dt, queues[id(c)])
                        a = acc[id(c)]
                        a[0] += out.bytes_moved
                        a[1] += out.files_completed
                    steps_left -= jump
                    if steps_left <= 0:
                        break
                # completion step: replay one fixed-dt step exactly
                for c in dense:
                    if not c.busy:
                        c.take_from(queues[id(c)])
                for c in dense:
                    out = c.advance(crates[id(c)], dt, queues[id(c)])
                    a = acc[id(c)]
                    a[0] += out.bytes_moved
                    a[1] += out.files_completed
                steps_left -= 1
            for c in dense:
                moved, completed = acc[id(c)]
                account(c, moved, completed)

        power = self._instant_power(busy, moved_src, moved_dst, span)
        self.total_energy += power * span
        # Accumulate time exactly as the fixed stepper would (k repeated
        # additions), so the two modes agree on `time` to the last bit —
        # float addition is not associative, and `+= k*dt` would drift.
        # Long spans batch the additions into one sequential-fold array
        # op (bit-equal, see accumulate_times).
        step_times: list[float]
        if k >= ACCUM_VECTOR_MIN:
            times = accumulate_times(self.time, dt, k)
            self.time = float(times[-1])
            step_times = times.tolist() if self.record_trace else []
        else:
            t = self.time
            step_times = []
            for _ in range(k):
                t += dt
                step_times.append(t)
            self.time = t

        if self.record_trace:
            avg_throughput = sum(moved_src.values()) / span if moved_src else 0.0
            active = len(busy)
            self.trace.extend(
                StepRecord(
                    time=st,
                    throughput=avg_throughput,
                    power=power,
                    active_channels=active,
                )
                for st in step_times
            )

    # ------------------------------------------------------------------
    # lock-step coordination API (multi-transfer macro-stepping)
    # ------------------------------------------------------------------
    #
    # A coordinator running several engines against one path (see
    # ``repro.netsim.multi``) advances them in shared ``dt`` rounds. To
    # macro-step a whole *round* it needs the phases of ``step()``
    # split apart: prepare (recoveries + work assignment + rate
    # allocation), bound (how many whole steps are stable), advance.
    # These public wrappers expose exactly that, reusing the fast-path
    # machinery above, so the coordinator inherits the engine's
    # "fast path / fixed-dt duality" guarantees.

    def prepare_step(self) -> tuple[list[Channel], dict[int, float]]:
        """Run the pre-advance phase of one step and return the frozen
        ``(busy, rates)`` pair (rates in bytes/s per channel id).

        Equivalent to the first half of :meth:`step`: server
        recoveries, work assignment (idle channels pull files / steal
        work) and rate allocation. Feed the result to
        :meth:`stable_steps` / :meth:`advance_prepared`.
        """
        self._recover_servers()
        self._assign_work()
        busy = [c for c in self._channels.values() if c.busy]
        rates = self._allocate_rates(busy)
        return busy, rates

    def stable_steps(
        self, busy: list[Channel], rates: dict[int, float], max_steps: int
    ) -> int:
        """Public :meth:`_stable_steps` with the horizon given in whole
        ``dt`` steps from now. Returns 0 or 1 when only an exact fixed
        step is safe."""
        if max_steps <= 1:
            return max_steps
        return self._stable_steps(busy, rates, self.time + max_steps * self.dt)

    def count_stable_steps(self, rates: dict[int, float], max_steps: int) -> int:
        """Whole ``dt`` steps before this engine's *pre-assignment*
        busy-stream count could change.

        A lock-step coordinator re-samples every engine's busy
        parallelism at each round boundary *before* work assignment and
        feeds it to the other engines as competing traffic. That count
        dips for one step whenever a file completion's trailing
        control-channel gap straddles a step boundary (the channel ends
        the step file-less and is only refilled by the next round's
        assignment). :meth:`_stable_steps` does not bound those
        completions — they are invisible to this engine's own rates —
        so a coordinator running *coupled* engines must additionally
        bound its macro rounds here.

        For a chunk served by a single busy channel the completion
        schedule is walked exactly (queue order is deterministic) and
        only an actual straddling gap bounds the span, ending it *at*
        the step boundary where the dip becomes visible. For shared
        queues (two or more busy channels) the pop interleaving is not
        predicted; the span conservatively ends strictly before the
        first possible completion. Ending a span early is always safe —
        counts are re-sampled from true state at every round boundary —
        so near-boundary fp ties are treated as dips.
        """
        dt = self.dt
        span = max_steps * dt
        k = max_steps
        guard = 1e-9
        for name, state in self.chunks.items():
            chans = self._by_chunk.get(name)
            if not chans or not state.queue:
                continue
            busy_chans = [c for c in chans if c.busy]
            if not busy_chans:
                continue
            if len(busy_chans) > 1:
                t_first = min(
                    c.time_to_completion(rates.get(id(c), 0.0)) for c in busy_chans
                )
                if t_first < span:
                    k = min(k, int((t_first - guard) // dt))
            else:
                channel = busy_chans[0]
                rate = rates.get(id(channel), 0.0)
                if rate <= 0.0 or channel.current is None:
                    continue  # stalled: never completes, count frozen
                gap = channel.per_file_gap
                t = channel.gap_remaining + channel.current.remaining / rate
                if len(state.queue) >= _COUNT_WALK_VECTOR_MIN:
                    k = self._count_walk_vector(
                        state.queue, t, gap, rate, span, dt, guard, k
                    )
                    if k <= 1:
                        return 1
                    continue
                walked = 0
                queued = iter(state.queue)
                while t < span and walked < _COUNT_WALK_CAP:
                    boundary = (math.floor(t / dt) + 1.0) * dt
                    if t + gap > boundary - guard:
                        # dip visible at ``boundary``: span may end there
                        k = min(k, int(boundary / dt))
                        break
                    walked += 1
                    nxt = next(queued, None)
                    if nxt is None:
                        break  # queue exhausts: the drain bound applies
                    t += gap + nxt.remaining / rate
            if k <= 1:
                return 1
        return k

    @staticmethod
    def _count_walk_vector(
        queue: deque[FileProgress],
        t0: float,
        gap: float,
        rate: float,
        span: float,
        dt: float,
        guard: float,
        k: int,
    ) -> int:
        """Vectorized single-channel completion walk (deep queues).

        Computes the same completion schedule as the scalar walk in
        :meth:`count_stable_steps`: ``np.add.accumulate`` folds the
        per-file increments left-to-right, so every completion time is
        bit-equal to the loop's repeated additions, and the same
        straddling-gap test is applied to all of them in one pass. The
        first dip (if any) bounds ``k`` exactly as the scalar walk's
        early exit does.
        """
        n = min(len(queue), _COUNT_WALK_CAP - 1)
        times = np.empty(n + 1)
        times[0] = t0
        times[1:] = np.fromiter(
            (gap + fp.remaining / rate for fp in itertools.islice(queue, n)),
            dtype=np.float64,
            count=n,
        )
        np.add.accumulate(times, out=times)
        # the scalar walk only checks completions strictly before span
        limit = int(np.searchsorted(times, span, side="left"))
        if limit == 0:
            return k
        checked = times[:limit]
        boundaries = (np.floor(checked / dt) + 1.0) * dt
        dips = (checked + gap) > (boundaries - guard)
        first = int(np.argmax(dips))
        if dips[first]:
            return min(k, int(boundaries[first] / dt))
        return k

    def advance_prepared(
        self, busy: list[Channel], rates: dict[int, float], steps: int
    ) -> None:
        """Advance ``steps`` whole ``dt`` steps at a prepared
        allocation.

        ``steps == 1`` performs one exact fixed step (identical to the
        tail of :meth:`step`); ``steps >= 2`` macro-steps analytically
        with the same observer accounting as :meth:`_fast_step`. The
        caller is responsible for having bounded ``steps`` with
        :meth:`stable_steps` (and, when coupled to other engines,
        :meth:`count_stable_steps`).
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        observer = self.observer
        if steps == 1:
            if observer is not None:
                self._fallback_steps += 1
            self._advance_fixed(busy, rates)
            return
        if observer is not None:
            if self._fallback_steps:
                observer.fixed_fallback(self.time, self._fallback_steps)
                self._fallback_steps = 0
            observer.macro_step(self.time, steps, steps * self.dt)
        self._advance_macro(busy, rates, steps)

    def flush_fallback_events(self) -> None:
        """Close the trailing coalesced fixed-``dt`` fallback stretch.

        Mirrors what :meth:`run` does at its boundary; coordinators
        driving the engine through :meth:`advance_prepared` call this
        when the transfer finishes so the last stretch is not lost.
        """
        if self.observer is not None and self._fallback_steps:
            self.observer.fixed_fallback(self.time, self._fallback_steps)
            self._fallback_steps = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _queue_empty_for(self, channel: Channel) -> bool:
        return not self.chunks[channel.chunk_name].queue

    def _effective_queue(self, channel: Channel) -> deque[FileProgress]:
        """The queue a channel draws from (its current chunk's)."""
        return self.chunks[channel.chunk_name].queue

    def _assign_work(self) -> None:
        """Give every idle channel a file before allocating rates.

        With work stealing on, an idle channel whose own chunk has
        drained is *re-allocated* to the chunk with the most remaining
        bytes — it adopts that chunk's pipelining and parallelism, just
        as the custom GridFTP client reopens a freed channel against a
        different chunk (the paper's multi-chunk mechanism).
        """
        for channel in self._channels.values():
            if channel.busy:
                continue
            own = self.chunks[channel.chunk_name].queue
            if not own and self.work_stealing:
                candidates = [s for s in self.chunks.values() if s.queue]
                if candidates:
                    target = max(
                        candidates, key=lambda s: sum(fp.remaining for fp in s.queue)
                    )
                    self._log_event(
                        "channel_reassigned",
                        from_chunk=channel.chunk_name,
                        to_chunk=target.plan.name,
                    )
                    self._by_chunk[channel.chunk_name].remove(channel)
                    self._by_chunk.setdefault(target.plan.name, []).append(channel)
                    self._alloc_cache.clear()
                    channel.chunk_name = target.plan.name
                    channel.parallelism = max(1, target.plan.params.parallelism)
                    channel.pipelining = max(1, target.plan.params.pipelining)
                    own = target.queue
            channel.take_from(own)

    def _allocate_rates(self, busy: Sequence[Channel]) -> dict[int, float]:
        """Max-min fair (progressive-filling) rate allocation.

        Individual caps: buffer-limited TCP for the channel's stream
        count, host per-stream processing on both endpoints. Shared
        capacities: link aggregate goodput (congestion knee), and each
        server's NIC rate and disk aggregate.

        Allocations are memoized on the busy-channel signature — the
        per-channel (parallelism, src, dst) tuple plus the competing
        background stream count — because the engine re-solves an
        unchanged configuration on almost every step of a stable
        stretch. The cache is invalidated whenever a channel opens,
        closes, fails or is reassigned.
        """
        if not busy:
            return {}
        competing = self._competing_streams()
        signature = (
            tuple((c.parallelism, c.src_server, c.dst_server) for c in busy),
            competing,
            self._capacity_cap,
        )
        cached = self._alloc_cache.get(signature)
        if cached is not None:
            return {id(c): r for c, r in zip(busy, cached, strict=True)}

        src_spec = self.source.server
        dst_spec = self.destination.server

        caps: dict[int, float] = {}
        for c in busy:
            caps[id(c)] = min(
                tcp.channel_network_cap(self.path, c.parallelism),
                src_spec.per_channel_rate,
                dst_spec.per_channel_rate,
            )

        total_streams = sum(c.parallelism for c in busy)
        if competing > 0.0:
            shared = tcp.aggregate_goodput(self.path, total_streams + competing)
            link_capacity = shared * total_streams / (total_streams + competing)
        else:
            link_capacity = tcp.aggregate_goodput(self.path, total_streams)
        # exact 1.0 sentinel set only by set_link_scale
        if self._link_scale != 1.0:  # repro: noqa[RPL003]
            # brownout injection; constant between ``set_link_scale``
            # calls (which clear this memo), so omitting it from the
            # signature is safe.
            link_capacity *= self._link_scale
        if self._capacity_cap is not None and self._capacity_cap < link_capacity:
            # topology water-fill share: the flow's network-wide cap
            link_capacity = self._capacity_cap
        groups: list[tuple[float, list[int]]] = [
            (link_capacity, [id(c) for c in busy])
        ]
        for side, spec, attr in (
            ("src", src_spec, "src_server"),
            ("dst", dst_spec, "dst_server"),
        ):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_channels in by_server.values():
                capacity = min(
                    spec.nic_rate,
                    spec.disk.aggregate_capacity(len(server_channels)),
                )
                groups.append((capacity, [id(c) for c in server_channels]))

        # TCP fairness is per *stream*, so a channel carrying p parallel
        # streams claims p shares of any shared capacity.
        weights = {id(c): float(c.parallelism) for c in busy}
        rates = _max_min_fill(caps, groups, weights)
        if len(self._alloc_cache) >= 256:
            self._alloc_cache.clear()
        self._alloc_cache[signature] = tuple(rates[id(c)] for c in busy)
        return rates

    def _instant_power(
        self,
        busy: Sequence[Channel],
        moved_src: dict[int, float],
        moved_dst: dict[int, float],
        interval: float,
    ) -> float:
        """Total load-dependent watts across both sites over
        ``interval`` seconds of carried load (``interval`` is ``dt``
        for a fixed step, the whole span for a macro-step)."""
        power = 0.0
        for site, moved, attr in (
            (self.source, moved_src, "src_server"),
            (self.destination, moved_dst, "dst_server"),
        ):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_idx, server_channels in by_server.items():
                throughput = moved.get(server_idx, 0.0) / interval
                util = compute_utilization(
                    site.server,
                    channels=len(server_channels),
                    streams=sum(c.parallelism for c in server_channels),
                    throughput=throughput,
                )
                power += self.power_model(site.server, util)
                if self._component_fn is not None:
                    for name, watts in self._component_fn(site.server, util).items():
                        self.component_energy[name] = (
                            self.component_energy.get(name, 0.0) + watts * interval
                        )
        return power

    def server_utilizations(self) -> dict[str, Utilization]:
        """Current utilization per active server (for inspection/tests)."""
        result: dict[str, Utilization] = {}
        busy = [c for c in self._channels.values() if c.busy]
        for site, attr in ((self.source, "src_server"), (self.destination, "dst_server")):
            by_server: dict[int, list[Channel]] = {}
            for c in busy:
                by_server.setdefault(getattr(c, attr), []).append(c)
            for server_idx, server_channels in by_server.items():
                result[f"{site.name}[{server_idx}]"] = compute_utilization(
                    site.server,
                    channels=len(server_channels),
                    streams=sum(c.parallelism for c in server_channels),
                    throughput=0.0,
                )
        return result


def _max_min_fill(
    caps: dict[int, float],
    groups: Iterable[tuple[float, list[int]]],
    weights: Optional[dict[int, float]] = None,
) -> dict[int, float]:
    """Weighted progressive filling: raise all unfrozen flows at rates
    proportional to their weights, freezing flows as they hit their
    individual cap or exhaust a shared group capacity. Weighted max-min
    fairness; terminates because each round freezes at least one flow
    or one group."""
    if weights is None:
        weights = {k: 1.0 for k in caps}
    rates = {k: 0.0 for k in caps}
    remaining = [(capacity, list(members)) for capacity, members in groups]
    active = set(caps)
    eps = 1e-9

    while active:
        # `increment` is the common per-unit-weight raise this round.
        increment = min((caps[k] - rates[k]) / weights[k] for k in active)
        for capacity, members in remaining:
            live_weight = sum(weights[m] for m in members if m in active)
            if live_weight > 0:
                increment = min(increment, capacity / live_weight)
        if increment <= eps:
            break
        for k in active:
            rates[k] += increment * weights[k]
        new_remaining = []
        frozen: set[int] = set()
        for capacity, members in remaining:
            live = [m for m in members if m in active]
            capacity -= increment * sum(weights[m] for m in live)
            if capacity <= eps:
                frozen.update(live)
            new_remaining.append((capacity, members))
        remaining = new_remaining
        for k in list(active):
            if k in frozen or rates[k] >= caps[k] - eps:
                active.discard(k)
    return rates
