"""End-to-end transfer simulator substrate.

Models the mechanisms the paper's algorithms exploit: buffer-limited
TCP streams, the congestion knee, control-channel pipelining gaps, disk
scaling/contention, multi-server endpoints, and per-component
utilization that feeds the power models.
"""

from repro.netsim.channel import Channel, FileProgress
from repro.netsim.disk import DiskSubsystem, ParallelDisk, PowerLawDisk, SingleDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import (
    Binding,
    ChunkPlan,
    ChunkState,
    EngineSnapshot,
    StepRecord,
    TransferEngine,
)
from repro.netsim.link import NetworkPath
from repro.netsim.multi import JobRecord, MultiTransferSimulator
from repro.netsim.params import TransferParams
from repro.netsim.tcp import aggregate_goodput, channel_network_cap, stream_throughput
from repro.netsim.utilization import Utilization, compute_utilization

__all__ = [
    "Binding",
    "Channel",
    "ChunkPlan",
    "ChunkState",
    "DiskSubsystem",
    "EndSystem",
    "EngineSnapshot",
    "FileProgress",
    "JobRecord",
    "MultiTransferSimulator",
    "NetworkPath",
    "ParallelDisk",
    "PowerLawDisk",
    "ServerSpec",
    "SingleDisk",
    "StepRecord",
    "TransferEngine",
    "TransferParams",
    "Utilization",
    "aggregate_goodput",
    "channel_network_cap",
    "compute_utilization",
    "stream_throughput",
]
