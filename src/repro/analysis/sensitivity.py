"""Calibration sensitivity analysis.

The reproduction's host constants (per-channel rate, disk rates, CPU
overheads, the congestion knee, the power-coefficient scale) are
calibrated, not published. A result that survives only at the exact
calibrated values would be an artifact; this module perturbs one knob
at a time and measures how the reference outputs move, so EXPERIMENTS.md
can state which conclusions are robust and which constants actually
matter.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from repro.core.scheduler import TransferOutcome
from repro.netsim.disk import ParallelDisk, PowerLawDisk, SingleDisk
from repro.testbeds.specs import Testbed

__all__ = ["KNOBS", "perturb_testbed", "SensitivityRow", "sensitivity_report", "render_sensitivity"]


def _scale_server(testbed: Testbed, **changes) -> Testbed:
    server = dataclasses.replace(testbed.source.server, **changes)
    return dataclasses.replace(
        testbed,
        source=dataclasses.replace(testbed.source, server=server),
        destination=dataclasses.replace(testbed.destination, server=server),
    )


def _scale_disk(testbed: Testbed, factor: float) -> Testbed:
    disk = testbed.source.server.disk
    if isinstance(disk, SingleDisk):
        new = dataclasses.replace(disk, peak_rate=disk.peak_rate * factor)
    elif isinstance(disk, ParallelDisk):
        new = dataclasses.replace(
            disk,
            per_accessor_rate=disk.per_accessor_rate * factor,
            array_rate=disk.array_rate * factor,
        )
    elif isinstance(disk, PowerLawDisk):
        new = dataclasses.replace(disk, single_rate=disk.single_rate * factor)
    else:  # pragma: no cover - future disk types
        raise TypeError(f"cannot scale disk {type(disk).__name__}")
    return _scale_server(testbed, disk=new)


#: Named calibration knobs -> (testbed, factor) -> perturbed testbed.
KNOBS: Mapping[str, Callable[[Testbed, float], Testbed]] = {
    "per_channel_rate": lambda tb, f: _scale_server(
        tb, per_channel_rate=tb.source.server.per_channel_rate * f
    ),
    "core_rate": lambda tb, f: _scale_server(
        tb, core_rate=tb.source.server.core_rate * f
    ),
    "disk_rate": _scale_disk,
    "active_overhead": lambda tb, f: _scale_server(
        tb, active_overhead=tb.source.server.active_overhead * f
    ),
    "thrash_factor": lambda tb, f: _scale_server(
        tb, thrash_factor=tb.source.server.thrash_factor * f
    ),
    "protocol_efficiency": lambda tb, f: dataclasses.replace(
        tb,
        path=dataclasses.replace(
            tb.path, protocol_efficiency=min(1.0, tb.path.protocol_efficiency * f)
        ),
    ),
    "congestion_knee": lambda tb, f: dataclasses.replace(
        tb,
        path=dataclasses.replace(
            tb.path, congestion_knee=max(1, round(tb.path.congestion_knee * f))
        ),
    ),
    "coefficient_scale": lambda tb, f: dataclasses.replace(
        tb, coefficients=tb.coefficients.scaled(tb.coefficients.scale * f)
    ),
}


def perturb_testbed(testbed: Testbed, knob: str, factor: float) -> Testbed:
    """A copy of ``testbed`` with one calibration constant scaled."""
    if knob not in KNOBS:
        raise KeyError(f"unknown knob {knob!r}; known: {sorted(KNOBS)}")
    if factor <= 0:
        raise ValueError("factor must be > 0")
    return KNOBS[knob](testbed, factor)


@dataclass(frozen=True)
class SensitivityRow:
    """Impact of one knob perturbation on the reference run."""

    knob: str
    factor: float
    throughput_change: float  # fractional, vs baseline
    energy_change: float  # fractional, vs baseline

    @property
    def elasticity(self) -> float:
        """Throughput response per unit of knob change (|dT/T| / |df|)."""
        df = abs(self.factor - 1.0)
        return abs(self.throughput_change) / df if df > 0 else 0.0


def sensitivity_report(
    testbed: Testbed,
    run: Callable[[Testbed], TransferOutcome],
    *,
    knobs: Sequence[str] = tuple(KNOBS),
    factors: Sequence[float] = (0.8, 1.2),
) -> list[SensitivityRow]:
    """One-at-a-time sensitivity of ``run`` to each calibration knob.

    ``run`` is any closure executing a reference experiment on a
    testbed (e.g. ProMC at cc=12 on a fixed dataset).
    """
    baseline = run(testbed)
    if baseline.throughput <= 0 or baseline.energy_joules <= 0:
        raise ValueError("baseline run produced no throughput/energy")
    rows = []
    for knob in knobs:
        for factor in factors:
            outcome = run(perturb_testbed(testbed, knob, factor))
            rows.append(
                SensitivityRow(
                    knob=knob,
                    factor=factor,
                    throughput_change=outcome.throughput / baseline.throughput - 1.0,
                    energy_change=outcome.energy_joules / baseline.energy_joules - 1.0,
                )
            )
    return rows


def render_sensitivity(rows: Sequence[SensitivityRow]) -> str:
    """The sensitivity table, most throughput-sensitive knob first."""
    ordered = sorted(rows, key=lambda r: -abs(r.throughput_change))
    lines = [f"{'knob':>20s} {'factor':>7s} {'d(throughput)':>14s} {'d(energy)':>10s}"]
    for row in ordered:
        lines.append(
            f"{row.knob:>20s} {row.factor:7.2f} "
            f"{100 * row.throughput_change:+13.1f}% {100 * row.energy_change:+9.1f}%"
        )
    return "\n".join(lines)
