"""Crossover detection on swept curves.

The paper's figures are read through their crossings: where SC's energy
overtakes MinE's, where extra concurrency stops paying, where the
throughput/energy ratio turns over. This module finds those points on
sampled series by sign-change scanning with linear interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

__all__ = ["Crossover", "find_crossovers", "argmax_interpolated"]


@dataclass(frozen=True)
class Crossover:
    """One crossing of two series: ``a`` overtakes ``b`` (or vice versa)."""

    x: float
    direction: str  # "a_above" if a rises above b at x, else "b_above"


def find_crossovers(
    x: Sequence[float], a: Sequence[float], b: Sequence[float],
    *, atol: float = 0.0,
) -> list[Crossover]:
    """All points where series ``a`` and ``b`` cross, by linear
    interpolation between samples. Touching without crossing is not
    reported.

    ``atol`` is the absolute tolerance under which the two series are
    considered *coincident* on a segment (both endpoint differences
    within ``atol`` of zero); coincident segments never produce a
    crossing. The default ``0.0`` keeps the historical exact behaviour:
    only bit-identical samples coincide. Pass a small positive ``atol``
    when the series carry fp round-off from the energy integrals.
    """
    if not (len(x) == len(a) == len(b)):
        raise ValueError("x, a and b must share a length")
    if atol < 0:
        raise ValueError(f"atol must be >= 0, got {atol}")
    if len(x) < 2:
        return []
    crossings = []
    for i in range(len(x) - 1):
        d0 = a[i] - b[i]
        d1 = a[i + 1] - b[i + 1]
        if abs(d0) <= atol and abs(d1) <= atol:
            continue  # coincident segment (tolerance-based, not ==)
        if d0 * d1 < 0:
            # linear interpolation of the zero of (a-b)
            t = d0 / (d0 - d1)
            crossings.append(
                Crossover(
                    x=x[i] + t * (x[i + 1] - x[i]),
                    direction="a_above" if d1 > 0 else "b_above",
                )
            )
    return crossings


def argmax_interpolated(x: Sequence[float], y: Sequence[float]) -> float:
    """The x of the series' peak, refined by fitting a parabola through
    the peak sample and its neighbours (how one reads "the ratio is
    maximized around concurrency 8" off a sampled curve)."""
    if len(x) != len(y):
        raise ValueError("x and y must share a length")
    if not x:
        raise ValueError("series must be non-empty")
    i = max(range(len(y)), key=lambda k: y[k])
    if i == 0 or i == len(y) - 1:
        return float(x[i])
    x0, x1, x2 = x[i - 1], x[i], x[i + 1]
    y0, y1, y2 = y[i - 1], y[i], y[i + 1]
    denom = (x0 - x1) * (x0 - x2) * (x1 - x2)
    if denom == 0:
        return float(x1)
    a = (x2 * (y1 - y0) + x1 * (y0 - y2) + x0 * (y2 - y1)) / denom
    b = (x2 * x2 * (y0 - y1) + x1 * x1 * (y2 - y0) + x0 * x0 * (y1 - y2)) / denom
    if a == 0:
        return float(x1)
    vertex = -b / (2 * a)
    # keep the refinement inside the peak's neighbourhood
    return float(min(max(vertex, x0), x2))
