"""Post-hoc analyses: calibration sensitivity and curve crossovers."""

from repro.analysis.crossover import Crossover, argmax_interpolated, find_crossovers
from repro.analysis.sensitivity import (
    KNOBS,
    SensitivityRow,
    perturb_testbed,
    render_sensitivity,
    sensitivity_report,
)

__all__ = [
    "Crossover",
    "KNOBS",
    "SensitivityRow",
    "argmax_interpolated",
    "find_crossovers",
    "perturb_testbed",
    "render_sensitivity",
    "sensitivity_report",
]
