"""Time-of-use electricity price and carbon-intensity traces.

The paper's economic pitch — providers "can possibly offer low-cost
data transfer options to their customers in return for delayed
transfers" — only produces *dollar* savings when the price of a joule
depends on **when** it is drawn. This module supplies that time axis:
a :class:`TariffTrace` is a periodic, piecewise-constant schedule of
electricity price ($/kWh) and grid carbon intensity (kgCO2/kWh),
shared by the service layer (per-step cost accounting, deferral
policies hunting cheap/green windows) and by
:class:`repro.fleet.TariffModel` (fleet-scale projections).

Everything is deterministic and analytic: segment boundaries are
exposed through :meth:`TariffTrace.next_change` so both the service
scheduler and the engine-style event-horizon reasoning can jump
between plateaus instead of sampling.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field, replace

from repro.units import Joules, Seconds

__all__ = [
    "TariffTrace",
    "flat_tariff",
    "peak_offpeak_tariff",
    "green_midday_tariff",
    "TARIFF_PRESETS",
    "tariff_by_name",
    "JOULES_PER_KWH",
]

JOULES_PER_KWH = 3.6e6

#: One simulated "day" (the default trace period), seconds.
DAY_S = 86400.0


@dataclass(frozen=True)
class TariffTrace:
    """A periodic piecewise-constant price + carbon schedule.

    ``points`` is a sorted tuple of ``(offset_s, dollars_per_kwh,
    kg_co2_per_kwh)`` plateaus within one period; the first offset must
    be 0 so every instant is covered. Values at absolute time ``t``
    are looked up at ``t mod period_s``.
    """

    name: str
    points: tuple[tuple[float, float, float], ...]
    period_s: float = DAY_S
    #: Plateau offsets, cached once for bisection (derived from
    #: ``points``; excluded from comparison/repr).
    _offsets: tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be > 0")
        if not self.points:
            raise ValueError("a tariff trace needs at least one plateau")
        offsets = [p[0] for p in self.points]
        if offsets[0] != 0.0:
            raise ValueError("the first plateau must start at offset 0")
        if offsets != sorted(offsets) or len(set(offsets)) != len(offsets):
            raise ValueError("plateau offsets must be strictly increasing")
        if offsets[-1] >= self.period_s:
            raise ValueError("plateau offsets must lie within the period")
        if any(price < 0 or carbon < 0 for _, price, carbon in self.points):
            raise ValueError("prices and carbon intensities must be >= 0")
        object.__setattr__(self, "_offsets", tuple(offsets))

    # -- lookups --------------------------------------------------------

    def _segment(self, t: float) -> tuple[float, float, float]:
        phase = t % self.period_s
        idx = bisect_right(self._offsets, phase) - 1
        return self.points[idx]

    def plateau(self, t: Seconds) -> tuple[float, float, Seconds]:
        """``(price $/kWh, carbon kgCO2/kWh, next boundary time)`` of
        the plateau in force at absolute time ``t`` (seconds).

        One lookup for callers that need all three — the service fast
        path bills whole macro-spans against a single plateau and uses
        the boundary as an event horizon. Unlike :meth:`next_change`
        (whose epsilon guard rounds a ``t`` sitting within 1e-12 of an
        edge *past* it), the boundary returned here is derived from the
        **same segment the price came from**, so every instant in
        ``[t, boundary)`` is guaranteed to price at the returned values
        — the invariant plateau-granular billing relies on.
        """
        if len(self.points) == 1:
            _offset, price, carbon = self.points[0]
            return price, carbon, math.inf
        phase = t % self.period_s
        idx = bisect_right(self._offsets, phase) - 1
        _offset, price, carbon = self.points[idx]
        if idx + 1 < len(self.points):
            boundary = t - phase + self._offsets[idx + 1]
        else:
            boundary = t - phase + self.period_s  # next period's offset 0
        return price, carbon, boundary

    def price_at(self, t: Seconds) -> float:
        """Electricity price ($/kWh) at absolute time ``t`` (seconds)."""
        return self._segment(t)[1]

    def carbon_at(self, t: Seconds) -> float:
        """Grid carbon intensity (kgCO2/kWh) at absolute time ``t``
        (seconds)."""
        return self._segment(t)[2]

    def next_change(self, t: Seconds) -> Seconds:
        """Absolute time (seconds) of the next plateau boundary strictly
        after ``t`` (``inf`` for a single-plateau trace)."""
        if len(self.points) == 1:
            return math.inf
        cycle = math.floor(t / self.period_s)
        phase = t - cycle * self.period_s
        for offset, _, _ in self.points:
            if offset > phase + 1e-12:
                return cycle * self.period_s + offset
        return (cycle + 1) * self.period_s  # wrap to the next period's 0

    # -- aggregates -----------------------------------------------------

    @property
    def mean_price(self) -> float:
        """Time-weighted average price over one period ($/kWh)."""
        return self._mean(1)

    @property
    def mean_carbon(self) -> float:
        """Time-weighted average carbon intensity (kgCO2/kWh)."""
        return self._mean(2)

    def _mean(self, column: int) -> float:
        total = 0.0
        for i, point in enumerate(self.points):
            end = (
                self.points[i + 1][0] if i + 1 < len(self.points) else self.period_s
            )
            total += point[column] * (end - point[0])
        return total / self.period_s

    @property
    def min_price(self) -> float:
        return min(p[1] for p in self.points)

    @property
    def min_carbon(self) -> float:
        return min(p[2] for p in self.points)

    # -- integration ----------------------------------------------------

    def _integrate(self, start: float, duration: float, column: int) -> float:
        """Integral of the selected column over ``[start, start +
        duration]`` divided by ``duration`` (the interval-average
        value). Walks plateau boundaries analytically."""
        if duration <= 0:
            return self._segment(start)[column]
        total = 0.0
        t = start
        end = start + duration
        while t < end - 1e-12:
            boundary = min(self.next_change(t), end)
            total += self._segment(t)[column] * (boundary - t)
            t = boundary
        return total / duration

    def cost(self, joules: Joules, start: Seconds, duration: Seconds = 0.0) -> float:
        """Dollars for ``joules`` drawn uniformly over the interval.

        With ``duration=0`` the energy is priced at the instantaneous
        tariff. Energy is assumed uniformly spread — exact for the
        service loop (which integrates per step) and a first-order
        model for whole-transfer pricing.
        """
        if joules < 0:
            raise ValueError("joules must be >= 0")
        return joules / JOULES_PER_KWH * self._integrate(start, duration, 1)

    def carbon(self, joules: Joules, start: Seconds, duration: Seconds = 0.0) -> float:
        """kgCO2 for ``joules`` drawn uniformly over the interval
        (``start``/``duration`` in seconds)."""
        if joules < 0:
            raise ValueError("joules must be >= 0")
        return joules / JOULES_PER_KWH * self._integrate(start, duration, 2)

    # -- window search (deferral policies) ------------------------------

    def next_window_at_or_below(
        self, threshold: float, now: Seconds, *, carbon: bool = False
    ) -> Seconds:
        """Earliest ``t >= now`` whose plateau value is ``<=
        threshold`` (price by default, carbon with ``carbon=True``).

        Returns ``inf`` when no plateau in a full period qualifies —
        the caller should then run immediately rather than wait for a
        window that never comes.
        """
        column = 2 if carbon else 1
        t = now
        horizon = now + self.period_s
        while t < horizon + 1e-9:
            if self._segment(t)[column] <= threshold + 1e-12:
                return t
            nxt = self.next_change(t)
            if math.isinf(nxt):
                break
            t = nxt
        return math.inf

    # -- reshaping ------------------------------------------------------

    def scaled_to(self, period_s: Seconds) -> "TariffTrace":
        """The same shape compressed/stretched to a new period of
        ``period_s`` seconds.

        Lets tests and benchmarks run a whole "day" of tariff structure
        in minutes of simulated time without touching the trace shape.
        """
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        factor = period_s / self.period_s
        return replace(
            self,
            points=tuple((o * factor, p, c) for o, p, c in self.points),
            period_s=period_s,
        )

    def scaled(
        self, price_factor: float = 1.0, carbon_factor: float = 1.0
    ) -> "TariffTrace":
        """The same schedule with every plateau's price and carbon
        multiplied by the given factors.

        This is the chaos harness's tariff-spike primitive: a grid
        emergency that triples spot prices keeps the day's *shape*
        (peaks stay peaks) while shifting every level.
        """
        if price_factor < 0 or carbon_factor < 0:
            raise ValueError("tariff scale factors must be >= 0")
        return replace(
            self,
            name=f"{self.name}*{price_factor:g}/{carbon_factor:g}",
            points=tuple(
                (o, p * price_factor, c * carbon_factor) for o, p, c in self.points
            ),
        )


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------


def _hours(*segments: tuple[float, float, float]) -> tuple[tuple[float, float, float], ...]:
    return tuple((h * 3600.0, price, carbon) for h, price, carbon in segments)


def flat_tariff(
    price: float = 0.08, carbon: float = 0.37, *, period_s: float = DAY_S
) -> TariffTrace:
    """A constant price/intensity (the legacy ``TariffModel`` default)
    repeating every ``period_s`` seconds."""
    return TariffTrace(name="flat", points=((0.0, price, carbon),), period_s=period_s)


def peak_offpeak_tariff(*, period_s: float = DAY_S) -> TariffTrace:
    """A classic demand-shaped retail schedule.

    Night (00-06, 22-24) is cheap and moderately clean; the midday/
    evening business block (12-20) is the expensive peak served by the
    dirtiest marginal generation. This is the trace that makes delayed
    transfers *worth money*: ENERGY-class jobs arriving at peak can be
    deferred ~2-10 h for a 3.2x price drop. ``period_s`` rescales the
    24 h structure onto a period of that many seconds.
    """
    trace = TariffTrace(
        name="peak-offpeak",
        points=_hours(
            (0.0, 0.05, 0.32),   # off-peak night
            (6.0, 0.09, 0.38),   # morning shoulder
            (12.0, 0.16, 0.45),  # peak
            (20.0, 0.09, 0.38),  # evening shoulder
            (22.0, 0.05, 0.32),  # back to off-peak
        ),
    )
    return trace if period_s == DAY_S else trace.scaled_to(period_s)


def green_midday_tariff(*, period_s: float = DAY_S) -> TariffTrace:
    """A solar-heavy grid: price mildly demand-shaped, carbon lowest in
    the 10-16 solar window and worst at the evening ramp — the trace
    the carbon-aware deferral policy is designed for. ``period_s``
    rescales the 24 h structure onto a period of that many seconds."""
    trace = TariffTrace(
        name="green-midday",
        points=_hours(
            (0.0, 0.07, 0.34),   # night
            (7.0, 0.09, 0.40),   # morning ramp
            (10.0, 0.08, 0.18),  # solar window
            (16.0, 0.12, 0.48),  # evening ramp (duck-curve neck)
            (21.0, 0.07, 0.34),  # night
        ),
    )
    return trace if period_s == DAY_S else trace.scaled_to(period_s)


#: Name -> factory accepting ``period_s`` (CLI / bench iteration).
TARIFF_PRESETS = {
    "flat": flat_tariff,
    "peak-offpeak": peak_offpeak_tariff,
    "green-midday": green_midday_tariff,
}


def tariff_by_name(name: str, *, period_s: float = DAY_S) -> TariffTrace:
    """Look up a preset trace, optionally rescaled to a period of
    ``period_s`` seconds."""
    try:
        factory = TARIFF_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown tariff {name!r}; known: {sorted(TARIFF_PRESETS)}"
        ) from None
    return factory(period_s=period_s)
