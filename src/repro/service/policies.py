"""SLA-class → transfer-plan mapping.

The service promises each tenant a behaviour, not an algorithm; this
module turns the promise into a concrete chunk plan using the paper's
planners:

* ``ENERGY``   → MinE's small→large parameter walk (Algorithm 1): the
  minimum-energy plan, deferrable by the scheduler.
* ``BALANCED`` → HTEE-tuned parameters (Algorithm 2's ``log(size) *
  log(count)`` channel weighting), with the concurrency chosen by a
  closed-form argmax of predicted throughput-per-watt over the probe
  ladder — the static counterpart of HTEE's online search.
* ``SLA(x)``   → SLAEE-style channel assignment (Algorithm 3's small-
  first, Large-pinned allocation) at the concurrency proportional to
  the target fraction of the path's reference maximum.

Every plan carries first-order duration/energy estimates from
:func:`repro.core.advisor.predict_plan_performance`, which the
scheduler uses for deadline feasibility — so planning, deferral and
admission all reason from one model.

Planning is memoized: the MinE/HTEE/SLAEE math is a pure function of
the testbed, the dataset's file sizes, the SLA class and the planner
knobs, and real workloads repeat dataset shapes constantly (tenants
re-send the same backup mixes), so :func:`plan_for` consults a small
LRU keyed by ``(testbed identity, file-size signature, SLA kind/level,
max_channels, partition policy)``. Hits return a fresh
:class:`JobPlan` wrapping the cached chunk plans — byte-identical
numerics, none of the planning cost. ``use_cache=False`` bypasses it;
:func:`plan_cache_info` / :func:`plan_cache_clear` expose and reset it
(clear after mutating a ``Testbed`` in place — identity keying cannot
see in-place edits).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional

from repro.core.advisor import predict_plan_performance
from repro.core.allocation import chunk_params, htee_weights
from repro.core.chunks import PartitionPolicy, partition_files
from repro.core.htee import probe_ladder, scaled_allocation
from repro.core.mine import MinEAlgorithm
from repro.core.scheduler import make_plans
from repro.core.slaee import sla_allocation
from repro.netsim.engine import ChunkPlan
from repro.service.requests import TransferRequest
from repro.testbeds.specs import Testbed
from repro.units import Joules, Seconds

__all__ = [
    "JobPlan",
    "PlanCacheEntry",
    "export_plan_cache",
    "plan_for",
    "plan_cache_info",
    "plan_cache_clear",
    "seed_plan_cache",
]


@dataclass(frozen=True)
class JobPlan:
    """A request turned into engine-ready chunk plans plus estimates
    (duration in seconds, energy in joules)."""

    request: TransferRequest
    algorithm: str
    plans: tuple[ChunkPlan, ...]
    est_duration_s: Seconds
    est_energy_j: Joules

    @property
    def total_bytes(self) -> int:
        return sum(p.total_size for p in self.plans)

    @property
    def planned_channels(self) -> int:
        return sum(p.params.concurrency for p in self.plans)


# ----------------------------------------------------------------------
# plan memoization
# ----------------------------------------------------------------------

#: Cache key: ``(id(testbed), file sizes, sla kind, sla level,
#: max_channels, partition_policy)``. Cache value: ``(algorithm, plans,
#: est_duration_s, est_energy_j, testbed)`` — the testbed reference is
#: stored purely to pin the object alive so its ``id`` cannot be
#: recycled while the entry lives.
_CacheKey = tuple[int, tuple[int, ...], str, Optional[float], int, PartitionPolicy]
_CacheValue = tuple[str, tuple[ChunkPlan, ...], Seconds, Joules, Testbed]


class _PlanCache:
    """A small LRU over planning results with hit/miss accounting."""

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[_CacheKey, _CacheValue] = OrderedDict()

    def get(self, key: _CacheKey) -> Optional[_CacheValue]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: _CacheKey, value: _CacheValue) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_PLAN_CACHE = _PlanCache()


def plan_cache_info() -> dict[str, int]:
    """Current plan-cache statistics: ``hits``, ``misses``, ``size``,
    ``maxsize``."""
    return {
        "hits": _PLAN_CACHE.hits,
        "misses": _PLAN_CACHE.misses,
        "size": len(_PLAN_CACHE),
        "maxsize": _PLAN_CACHE.maxsize,
    }


def plan_cache_clear() -> None:
    """Drop every memoized plan and reset the hit/miss counters.

    Call this after mutating a :class:`Testbed` in place — cache keys
    carry testbed *identity*, which cannot observe in-place edits.
    """
    _PLAN_CACHE.clear()


#: One portable (picklable, identity-free) warm-start entry: the cache
#: key minus the testbed id — ``(file sizes, sla kind, sla level,
#: max_channels, partition_policy)`` — plus the cached planning result
#: ``(algorithm, plans, est_duration_s, est_energy_j)``.
PlanCacheEntry = tuple[
    tuple[int, ...],
    str,
    Optional[float],
    int,
    PartitionPolicy,
    str,
    tuple[ChunkPlan, ...],
    Seconds,
    Joules,
]


def export_plan_cache(testbed: Testbed) -> list[PlanCacheEntry]:
    """Snapshot ``testbed``'s memoized plans as portable entries.

    Entries drop the identity half of the cache key (``id(testbed)``
    does not survive pickling), so they can cross process boundaries
    and be re-pinned to *any* equivalent testbed object with
    :func:`seed_plan_cache` — the psim-``GContext`` warm-start idiom.
    Returned in LRU order (oldest first), so re-seeding preserves
    eviction order.
    """
    tb_id = id(testbed)
    return [
        (key[1], key[2], key[3], key[4], key[5], value[0], value[1], value[2], value[3])
        for key, value in _PLAN_CACHE._data.items()
        if key[0] == tb_id
    ]


def seed_plan_cache(testbed: Testbed, entries: Iterable[PlanCacheEntry]) -> int:
    """Warm the plan LRU for ``testbed`` from exported entries.

    Seeds both the memoized chunk plans and their
    :func:`~repro.core.advisor.predict_plan_performance` estimates, so
    a service run starting from a prior similar run's context plans
    repeated dataset shapes without paying the MinE/HTEE/SLAEE math
    even once. Seeding counts as neither hit nor miss. Returns the
    number of entries installed. The caller vouches that ``testbed``
    is equivalent to the exporting one (same path/server/coefficient
    numbers) — entries carry no identity to check against.
    """
    count = 0
    for sizes, kind, level, max_channels, policy, algorithm, plans, duration, energy in entries:
        key: _CacheKey = (id(testbed), tuple(sizes), kind, level, max_channels, policy)
        _PLAN_CACHE.put(key, (algorithm, tuple(plans), duration, energy, testbed))
        count += 1
    return count


def _cache_key(
    testbed: Testbed,
    request: TransferRequest,
    max_channels: int,
    partition_policy: PartitionPolicy,
) -> _CacheKey:
    return (
        id(testbed),
        tuple(f.size for f in request.dataset.files),
        request.sla.kind,
        request.sla.level,
        max_channels,
        partition_policy,
    )


def _estimate(testbed: Testbed, plans: list[ChunkPlan]) -> tuple[Seconds, Joules]:
    """(duration seconds, energy joules) from the closed-form predictor."""
    throughput, power = predict_plan_performance(testbed, plans)
    total = sum(p.total_size for p in plans)
    if throughput <= 0 or total <= 0:
        return 0.0, 0.0
    duration = total / throughput
    return duration, power * duration


def _balanced_plans(
    testbed: Testbed, request: TransferRequest, max_channels: int,
    policy: PartitionPolicy,
) -> list[ChunkPlan]:
    """HTEE weighting, concurrency by closed-form efficiency argmax."""
    bdp = testbed.path.bdp
    chunks = partition_files(request.dataset, bdp, policy)
    weights = htee_weights(chunks)
    best_plans: Optional[list[ChunkPlan]] = None
    best_score = -math.inf
    for cc in probe_ladder(max_channels):
        allocation = scaled_allocation(weights, cc)
        params = [
            chunk_params(chunk, bdp, testbed.path.tcp_buffer, alloc)
            for chunk, alloc in zip(chunks, allocation, strict=True)
        ]
        plans = make_plans(chunks, params)
        throughput, power = predict_plan_performance(testbed, plans)
        score = throughput / power if power > 0 else 0.0
        if score > best_score + 1e-12:  # ties favor the lower concurrency
            best_score = score
            best_plans = plans
    assert best_plans is not None
    return best_plans


def _sla_plans(
    testbed: Testbed, request: TransferRequest, policy: PartitionPolicy,
) -> list[ChunkPlan]:
    """SLAEE-style static plan at the target-proportional concurrency."""
    assert request.sla.level is not None
    bdp = testbed.path.bdp
    chunks = partition_files(request.dataset, bdp, policy)
    cc_target = max(
        1, math.ceil(request.sla.level * testbed.sla_reference_concurrency)
    )
    allocation = sla_allocation(chunks, cc_target)
    params = [
        chunk_params(chunk, bdp, testbed.path.tcp_buffer, alloc)
        for chunk, alloc in zip(chunks, allocation, strict=True)
    ]
    return make_plans(chunks, params)


def plan_for(
    testbed: Testbed,
    request: TransferRequest,
    max_channels: int = 4,
    *,
    partition_policy: PartitionPolicy = PartitionPolicy(),
    use_cache: bool = True,
) -> JobPlan:
    """Map one request's SLA class to an engine-ready plan + estimates.

    ``max_channels`` bounds ENERGY/BALANCED jobs; SLA-class jobs size
    themselves from the testbed's reference concurrency instead (the
    contract is relative to the path's maximum, not to the service's
    per-job default budget).

    With ``use_cache=True`` (default) results are memoized on the
    planning inputs — repeated dataset shapes (identical file-size
    sequences) skip the MinE/HTEE/SLAEE math entirely. The returned
    :class:`JobPlan` always wraps *this* request; on a hit its chunk
    plans are shared with earlier jobs of the same shape (they are
    immutable inputs: each job's engine copies them into its own
    mutable state). Note the cached plans carry the file *names* of
    the first dataset of that shape — sizes, and therefore all
    simulated numerics, are identical by construction.
    """
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    key: Optional[_CacheKey] = None
    if use_cache:
        key = _cache_key(testbed, request, max_channels, partition_policy)
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            algorithm, plans_t, duration, energy, _pin = cached
            return JobPlan(
                request=request,
                algorithm=algorithm,
                plans=plans_t,
                est_duration_s=duration,
                est_energy_j=energy,
            )
    kind = request.sla.kind
    plans: list[ChunkPlan]
    if kind == "energy":
        algorithm = "MinE"
        plans = MinEAlgorithm(policy=partition_policy).plan(
            testbed, request.dataset, max_channels
        )
    elif kind == "balanced":
        algorithm = "HTEE-static"
        plans = _balanced_plans(testbed, request, max_channels, partition_policy)
    else:
        algorithm = "SLAEE-static"
        plans = _sla_plans(testbed, request, partition_policy)
    duration, energy = _estimate(testbed, plans)
    plans_tuple = tuple(plans)
    if key is not None:
        _PLAN_CACHE.put(key, (algorithm, plans_tuple, duration, energy, testbed))
    return JobPlan(
        request=request,
        algorithm=algorithm,
        plans=plans_tuple,
        est_duration_s=duration,
        est_energy_j=energy,
    )
