"""Transfer requests, SLA classes, and seeded workload generators.

A transfer *service* is defined by what its tenants ask of it. This
module models the request side: a :class:`TransferRequest` couples a
tenant, a dataset, an :class:`SLAClass` (how the tenant trades speed
for energy/price) and an optional deadline; workload generators turn a
seed into a reproducible day of traffic — Poisson arrivals, a diurnal
load shape peaking at business hours, or a bursty backup-window
pattern — over a configurable tenant mix.

Everything is deterministic under a fixed seed (NumPy ``default_rng``),
so service runs are replayable end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro import units
from repro.datasets.files import Dataset
from repro.datasets.generators import log_uniform_dataset
from repro.units import Seconds

__all__ = [
    "SLAClass",
    "ENERGY",
    "BALANCED",
    "sla",
    "TransferRequest",
    "TenantProfile",
    "DEFAULT_TENANTS",
    "poisson_workload",
    "diurnal_workload",
    "bursty_workload",
    "WORKLOAD_PRESETS",
    "workload_by_name",
]


# ----------------------------------------------------------------------
# SLA classes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SLAClass:
    """How a tenant trades transfer speed for energy and price.

    * ``energy`` — "whenever it's cheapest": the provider may defer the
      job and runs it with the minimum-energy plan (MinE).
    * ``balanced`` — best throughput-per-joule (HTEE-style weighting).
    * ``sla`` — "at least ``level`` of the path's maximum throughput"
      (the paper's SLAEE contract), ``level`` in (0, 1].
    """

    kind: str
    level: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("energy", "balanced", "sla"):
            raise ValueError(
                f"SLA kind must be energy|balanced|sla, got {self.kind!r}"
            )
        if self.kind == "sla":
            if self.level is None or not (0 < self.level <= 1):
                raise ValueError("sla class needs a level in (0, 1]")
        elif self.level is not None:
            raise ValueError(f"{self.kind} class takes no level")

    @property
    def deferrable(self) -> bool:
        """Whether the provider may delay this job for price/carbon."""
        return self.kind == "energy"

    @property
    def label(self) -> str:
        if self.kind == "sla":
            return f"SLA({self.level:.0%})"
        return self.kind.upper()


ENERGY = SLAClass("energy")
BALANCED = SLAClass("balanced")


def sla(level: float) -> SLAClass:
    """An SLA-class contract at ``level`` of the path maximum."""
    return SLAClass("sla", level)


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TransferRequest:
    """One tenant job as submitted to the service.

    ``submit_time`` and ``deadline`` are absolute simulated seconds;
    the deadline (optional) is a completion deadline, not a start
    deadline.
    """

    name: str
    tenant: str
    dataset: Dataset
    sla: SLAClass = BALANCED
    submit_time: Seconds = 0.0
    deadline: Optional[Seconds] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("request name must be non-empty")
        if self.submit_time < 0:
            raise ValueError("submit_time must be >= 0")
        if self.deadline is not None and self.deadline <= self.submit_time:
            raise ValueError("deadline must be after submit_time")

    @property
    def total_bytes(self) -> int:
        return self.dataset.total_size

    def slack_s(self) -> Seconds:
        """Seconds between submission and deadline (``inf`` if none)."""
        if self.deadline is None:
            return math.inf
        return self.deadline - self.submit_time


# ----------------------------------------------------------------------
# tenant mixes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantProfile:
    """One tenant population in a workload mix.

    ``share`` weights how many arrivals belong to this tenant;
    ``mean_size`` scales the per-job dataset; ``deadline_slack_frac``
    (fraction of the workload day, ``None`` = no deadline) sets how
    long the tenant tolerates waiting for completion.
    """

    name: str
    share: float
    sla: SLAClass
    mean_size: float
    deadline_slack_frac: Optional[float] = None
    #: Optional ``(min_frac, max_frac)`` of the drawn job size bounding
    #: individual file sizes — e.g. ``(1/8, 1/3)`` models a backup
    #: tenant shipping a handful of large archives per job instead of
    #: the default log-uniform spray of small files. ``None`` keeps the
    #: legacy file-size recipe (and its exact RNG stream) untouched.
    file_fracs: Optional[tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError("share must be > 0")
        if self.mean_size <= 0:
            raise ValueError("mean_size must be > 0")
        if self.deadline_slack_frac is not None and self.deadline_slack_frac <= 0:
            raise ValueError("deadline_slack_frac must be > 0")
        if self.file_fracs is not None:
            lo, hi = self.file_fracs
            if not (0.0 < lo <= hi <= 1.0):
                raise ValueError(
                    "file_fracs must satisfy 0 < min <= max <= 1"
                )


#: The default three-tenant mix: nightly archives that only care about
#: price (the paper's "delayed transfers" customer), interactive
#: analytics wanting good efficiency, and a media tenant on a hard SLA.
DEFAULT_TENANTS: tuple[TenantProfile, ...] = (
    TenantProfile(
        "archive", share=0.4, sla=ENERGY,
        mean_size=24 * units.GB, deadline_slack_frac=0.90,
    ),
    TenantProfile(
        "analytics", share=0.35, sla=BALANCED,
        mean_size=12 * units.GB, deadline_slack_frac=0.35,
    ),
    TenantProfile(
        "media", share=0.25, sla=sla(0.8),
        mean_size=16 * units.GB, deadline_slack_frac=0.20,
    ),
)


# ----------------------------------------------------------------------
# workload generators
# ----------------------------------------------------------------------


def _draw_dataset(
    rng: np.random.Generator,
    tenant: TenantProfile,
    size_scale: float,
    name: str,
) -> Dataset:
    """One tenant-shaped dataset draw (two ``rng`` consumptions:
    lognormal size jitter, then the dataset seed)."""
    # lognormal size jitter around the tenant's mean, clamped so a
    # single request can neither vanish nor swamp the day
    size = tenant.mean_size * size_scale * float(rng.lognormal(0.0, 0.35))
    size = float(np.clip(size, 64 * units.MB * min(1.0, size_scale), None))
    if tenant.file_fracs is not None:
        # chunky-dataset tenant: file sizes are a fixed fraction band of
        # the drawn job size (a handful of large archives per job)
        lo, hi = tenant.file_fracs
        min_file = size * lo
        max_file = max(min_file, size * hi)
    else:
        max_file = min(
            size, max(size / 4.0, 64 * units.MB * min(1.0, size_scale))
        )
        min_file = max(1 * units.MB * min(1.0, size_scale), max_file / 64.0)
    return log_uniform_dataset(
        size,
        min_file,
        max_file,
        seed=int(rng.integers(0, 2**31 - 1)),
        name=name,
    )


def _materialize(
    arrivals: np.ndarray,
    rng: np.random.Generator,
    *,
    day_s: Seconds,
    tenants: Sequence[TenantProfile],
    size_scale: float,
    label: str,
    dataset_pool: Optional[int] = None,
) -> list[TransferRequest]:
    """Turn sorted arrival times into full requests (tenant draw,
    dataset draw, deadline).

    With ``dataset_pool=N`` each tenant pre-draws a pool of ``N``
    datasets and every arrival samples one of them instead of drawing
    a fresh dataset — the "tenants re-send the same mixes" regime that
    makes plan memoization pay. ``None`` (default) keeps the legacy
    per-arrival draws and their exact RNG stream.
    """
    if dataset_pool is not None and dataset_pool < 1:
        raise ValueError("dataset_pool must be >= 1")
    shares = np.array([t.share for t in tenants], dtype=float)
    shares /= shares.sum()
    pools: Optional[list[list[Dataset]]] = None
    if dataset_pool is not None:
        pools = [
            [
                _draw_dataset(rng, tenant, size_scale, f"{tenant.name}-pool{p}")
                for p in range(dataset_pool)
            ]
            for tenant in tenants
        ]
    requests: list[TransferRequest] = []
    for i, at in enumerate(np.sort(arrivals)):
        tenant_idx = int(rng.choice(len(tenants), p=shares))
        tenant = tenants[tenant_idx]
        if pools is None:
            dataset = _draw_dataset(rng, tenant, size_scale, f"{tenant.name}-{i}")
        else:
            dataset = pools[tenant_idx][int(rng.integers(0, len(pools[tenant_idx])))]
        deadline = (
            float(at) + tenant.deadline_slack_frac * day_s
            if tenant.deadline_slack_frac is not None
            else None
        )
        requests.append(
            TransferRequest(
                name=f"{label}-{i:03d}",
                tenant=tenant.name,
                dataset=dataset,
                sla=tenant.sla,
                submit_time=float(at),
                deadline=deadline,
            )
        )
    return requests


def poisson_workload(
    n_jobs: int,
    *,
    day_s: Seconds = 86400.0,
    seed: int = 7,
    tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
    size_scale: float = 1.0,
    dataset_pool: Optional[int] = None,
) -> list[TransferRequest]:
    """``n_jobs`` Poisson (uniform-conditional) arrivals over one
    ``day_s``-second day."""
    _check_workload_args(n_jobs, day_s, size_scale)
    rng = np.random.default_rng(seed)
    arrivals = rng.uniform(0.0, day_s, size=n_jobs)
    return _materialize(
        arrivals, rng, day_s=day_s, tenants=tenants,
        size_scale=size_scale, label="steady", dataset_pool=dataset_pool,
    )


def _intensity_arrivals(
    rng: np.random.Generator, n_jobs: int, day_s: float, intensity,
) -> np.ndarray:
    """Inverse-CDF sampling of ``n_jobs`` arrivals from a normalized
    intensity shape over [0, day_s) (deterministic given ``rng``)."""
    grid = np.linspace(0.0, 1.0, 2049)
    lam = np.maximum(intensity(grid), 1e-9)
    cdf = np.concatenate(([0.0], np.cumsum((lam[1:] + lam[:-1]) / 2.0)))
    cdf /= cdf[-1]
    u = rng.uniform(0.0, 1.0, size=n_jobs)
    return np.interp(u, cdf, grid) * day_s


def diurnal_workload(
    n_jobs: int,
    *,
    day_s: Seconds = 86400.0,
    seed: int = 7,
    tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
    size_scale: float = 1.0,
    dataset_pool: Optional[int] = None,
) -> list[TransferRequest]:
    """A diurnal load shape over a ``day_s``-second day: arrivals track
    business hours, peaking mid-afternoon (~0.6 of the day) at roughly
    3x the night rate —
    squarely inside the peak-tariff window, which is exactly the
    tension the deferral policies exist to resolve."""
    _check_workload_args(n_jobs, day_s, size_scale)
    rng = np.random.default_rng(seed)
    arrivals = _intensity_arrivals(
        rng, n_jobs, day_s,
        lambda u: 1.0 + 0.8 * np.sin(2 * np.pi * (u - 0.35)),
    )
    return _materialize(
        arrivals, rng, day_s=day_s, tenants=tenants,
        size_scale=size_scale, label="diurnal", dataset_pool=dataset_pool,
    )


def bursty_workload(
    n_jobs: int,
    *,
    day_s: Seconds = 86400.0,
    seed: int = 7,
    tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
    size_scale: float = 1.0,
    dataset_pool: Optional[int] = None,
) -> list[TransferRequest]:
    """Two sharp submission bursts (morning ingest, evening backup)
    over a light background across a ``day_s``-second day — the
    admission-control stress case."""
    _check_workload_args(n_jobs, day_s, size_scale)
    rng = np.random.default_rng(seed)

    def intensity(u: np.ndarray) -> np.ndarray:
        burst = lambda c, w: np.exp(-0.5 * ((u - c) / w) ** 2)  # noqa: E731
        return 0.25 + 3.0 * burst(0.30, 0.04) + 3.0 * burst(0.72, 0.04)

    arrivals = _intensity_arrivals(rng, n_jobs, day_s, intensity)
    return _materialize(
        arrivals, rng, day_s=day_s, tenants=tenants,
        size_scale=size_scale, label="bursty", dataset_pool=dataset_pool,
    )


def _check_workload_args(n_jobs: int, day_s: float, size_scale: float) -> None:
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if day_s <= 0:
        raise ValueError("day_s must be > 0")
    if size_scale <= 0:
        raise ValueError("size_scale must be > 0")


#: Name -> generator (CLI / bench iteration). All share the signature
#: ``(n_jobs, *, day_s, seed, tenants, size_scale, dataset_pool)``.
WORKLOAD_PRESETS = {
    "steady": poisson_workload,
    "diurnal": diurnal_workload,
    "bursty": bursty_workload,
}


def workload_by_name(name: str, n_jobs: int, **kwargs) -> list[TransferRequest]:
    """Generate a preset workload by name."""
    try:
        generator = WORKLOAD_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_PRESETS)}"
        ) from None
    return generator(n_jobs, **kwargs)
