"""An energy/price/deadline-aware transfer scheduling *service*.

The paper's closing argument is economic: providers "can possibly
offer low-cost data transfer options to their customers in return for
delayed transfers". This package models that provider end to end:

* :mod:`repro.service.requests` — tenants, SLA classes, seeded
  workload generators (a reproducible day of traffic);
* :mod:`repro.service.tariff` — time-of-use electricity price and
  carbon-intensity traces (the time axis that turns joules into
  dollars);
* :mod:`repro.service.policies` — SLA class -> transfer plan, via the
  paper's planners (MinE / HTEE / SLAEE);
* :mod:`repro.service.scheduler` — deferral policies and admission
  priorities, under a deadline-safety invariant;
* :mod:`repro.service.simulate` — the event loop that admits,
  executes and bills each job at the tariff in force while it runs;
* :mod:`repro.service.fleet` — the sharded fleet dispatcher that
  routes a day across many links and merges per-shard reports.

Surfaced as ``repro service`` / ``repro fleet-service`` on the CLI and
benchmarked by ``benchmarks/bench_service.py`` /
``benchmarks/bench_fleet_service.py``.
"""

from repro.service.fleet import (
    FleetContext,
    FleetReport,
    FleetSimulator,
    ROUTING_POLICIES,
    RoutingResult,
    ShardResult,
    ShardSpec,
    route_requests,
)
from repro.service.policies import (
    JobPlan,
    export_plan_cache,
    plan_cache_clear,
    plan_cache_info,
    plan_for,
    seed_plan_cache,
)
from repro.service.requests import (
    BALANCED,
    DEFAULT_TENANTS,
    ENERGY,
    SLAClass,
    TenantProfile,
    TransferRequest,
    WORKLOAD_PRESETS,
    bursty_workload,
    diurnal_workload,
    poisson_workload,
    sla,
    workload_by_name,
)
from repro.service.scheduler import (
    CarbonAware,
    DeadlineEDF,
    DeferralPolicy,
    POLICY_PRESETS,
    PriceThreshold,
    RunNow,
    SchedulingDecision,
    latest_safe_start,
    policy_by_name,
)
from repro.service.simulate import JobResult, ServiceReport, ServiceSimulator
from repro.service.tariff import (
    TARIFF_PRESETS,
    TariffTrace,
    flat_tariff,
    green_midday_tariff,
    peak_offpeak_tariff,
    tariff_by_name,
)

__all__ = [
    # requests
    "SLAClass", "ENERGY", "BALANCED", "sla", "TransferRequest",
    "TenantProfile", "DEFAULT_TENANTS", "poisson_workload",
    "diurnal_workload", "bursty_workload", "WORKLOAD_PRESETS",
    "workload_by_name",
    # tariffs
    "TariffTrace", "flat_tariff", "peak_offpeak_tariff",
    "green_midday_tariff", "TARIFF_PRESETS", "tariff_by_name",
    # planning
    "JobPlan", "plan_for", "plan_cache_info", "plan_cache_clear",
    "export_plan_cache", "seed_plan_cache",
    # scheduling
    "SchedulingDecision", "DeferralPolicy", "RunNow", "DeadlineEDF",
    "PriceThreshold", "CarbonAware", "POLICY_PRESETS", "policy_by_name",
    "latest_safe_start",
    # simulation
    "JobResult", "ServiceReport", "ServiceSimulator",
    # fleet
    "FleetContext", "FleetReport", "FleetSimulator", "ROUTING_POLICIES",
    "RoutingResult", "ShardResult", "ShardSpec", "route_requests",
]
