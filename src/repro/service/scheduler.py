"""Admission control and deferral policies.

The scheduler answers two questions per job:

1. **When may it start?** (``release_time``) — ``RunNow`` says
   immediately; ``PriceThreshold`` and ``CarbonAware`` push
   deferrable (ENERGY-class) jobs to the next cheap/green tariff
   plateau, but *never* past the latest start that still meets the
   job's deadline at the estimated duration times a safety factor —
   the deadline-safety invariant every policy must uphold (tested in
   ``tests/test_service.py``).
2. **Who goes first when a slot frees?** (``priority``, lower wins) —
   ``RunNow`` is FIFO by submission; every deadline-conscious policy
   orders earliest-deadline-first so urgent jobs preempt queue
   position (not running jobs — admission is non-preemptive).

Admission itself (the concurrency cap and per-tenant fairness) lives
in :class:`repro.service.simulate.ServiceSimulator`, which consults
these decisions each scheduling round.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.service.requests import TransferRequest
from repro.service.tariff import TariffTrace
from repro.units import Seconds

__all__ = [
    "SchedulingDecision",
    "DeferralPolicy",
    "RunNow",
    "DeadlineEDF",
    "PriceThreshold",
    "CarbonAware",
    "POLICY_PRESETS",
    "policy_by_name",
    "latest_safe_start",
]


#: Default margin between the estimated duration and the duration the
#: scheduler *plans* for: contention with other admitted jobs stretches
#: transfers beyond their solo estimate, so deferral leaves headroom.
DEFAULT_SAFETY = 1.5


def latest_safe_start(
    request: TransferRequest, est_duration_s: Seconds, safety: float = DEFAULT_SAFETY
) -> Seconds:
    """The latest start still expected to meet the deadline (``inf``
    without one), given a solo duration estimate in seconds."""
    if request.deadline is None:
        return math.inf
    return request.deadline - safety * max(0.0, est_duration_s)


@dataclass(frozen=True)
class SchedulingDecision:
    """One policy's verdict on one job."""

    release_time: Seconds  # earliest moment the job may be admitted (seconds)
    priority: float        # admission order when slots are scarce (lower first)
    reason: str = ""       # non-empty iff the job was deferred

    @property
    def deferred(self) -> bool:
        return bool(self.reason)


class DeferralPolicy(ABC):
    """Strategy deciding release times and admission priorities."""

    name: str = "abstract"

    #: Safety factor applied to duration estimates (see module doc).
    safety: float = DEFAULT_SAFETY

    #: Chaos recovery hook: when a fault intervention strands admitted
    #: work (every channel of a job cut, a shard's server lost), the
    #: service re-opens transport for it iff the policy opts in. All
    #: presets reroute; a policy that would rather re-queue through
    #: admission can set this to ``False``.
    reroute_on_failure: bool = True

    @abstractmethod
    def schedule(
        self,
        request: TransferRequest,
        est_duration_s: Seconds,
        tariff: TariffTrace,
    ) -> SchedulingDecision:
        """Decide when ``request`` becomes eligible and how urgent it
        is, from its estimated solo duration (``est_duration_s``,
        seconds) and the tariff in force."""

    # -- shared helpers -------------------------------------------------

    def _edf_priority(self, request: TransferRequest) -> float:
        """Earliest-deadline-first key (deadline-less jobs last, FIFO
        among themselves via the simulator's stable tie-break)."""
        return request.deadline if request.deadline is not None else math.inf

    def _bounded_deferral(
        self,
        request: TransferRequest,
        est_duration_s: Seconds,
        window_start: Seconds,
        reason: str,
    ) -> SchedulingDecision:
        """Defer to ``window_start``, clamped by the deadline-safety
        invariant: a deferral never pushes a feasible job past its
        latest safe start (and never before its submission)."""
        safe = latest_safe_start(request, est_duration_s, self.safety)
        release = max(request.submit_time, min(window_start, safe))
        if release <= request.submit_time + 1e-9:
            return SchedulingDecision(
                release_time=request.submit_time,
                priority=self._edf_priority(request),
            )
        return SchedulingDecision(
            release_time=release,
            priority=self._edf_priority(request),
            reason=reason,
        )


@dataclass
class RunNow(DeferralPolicy):
    """The throughput-first baseline: admit everything FIFO, defer
    nothing. What today's transfer services do — and the arm every
    price/carbon saving is measured against."""

    name: str = "run-now"
    safety: float = DEFAULT_SAFETY

    def schedule(
        self, request: TransferRequest, est_duration_s: Seconds, tariff: TariffTrace
    ) -> SchedulingDecision:
        """Immediate release, FIFO priority (the duration estimate in
        seconds and the tariff are ignored by design)."""
        return SchedulingDecision(
            release_time=request.submit_time, priority=request.submit_time
        )


@dataclass
class DeadlineEDF(DeferralPolicy):
    """No deferral, but earliest-deadline-first admission: when the
    concurrency cap bites, jobs with tight deadlines jump the queue."""

    name: str = "deadline-edf"
    safety: float = DEFAULT_SAFETY

    def schedule(
        self, request: TransferRequest, est_duration_s: Seconds, tariff: TariffTrace
    ) -> SchedulingDecision:
        """Immediate release, earliest-deadline-first priority (the
        duration estimate in seconds is not needed: nothing defers)."""
        return SchedulingDecision(
            release_time=request.submit_time, priority=self._edf_priority(request)
        )


@dataclass
class PriceThreshold(DeferralPolicy):
    """Defer ENERGY-class jobs until the tariff drops to (or below) a
    price threshold — the paper's "low-cost data transfer options ...
    in return for delayed transfers", made operational.

    ``threshold`` defaults to the trace's cheapest plateau, i.e. "wait
    for off-peak"; deadlines always win over waiting (see
    :meth:`DeferralPolicy._bounded_deferral`). Non-deferrable classes
    (BALANCED, SLA) are scheduled EDF with no delay.
    """

    name: str = "price-threshold"
    threshold: Optional[float] = None
    safety: float = DEFAULT_SAFETY

    def schedule(
        self, request: TransferRequest, est_duration_s: Seconds, tariff: TariffTrace
    ) -> SchedulingDecision:
        """Defer deferrable jobs to the next at-or-below-threshold price
        window, bounded by the deadline-safety invariant applied to the
        solo duration estimate (``est_duration_s``, seconds)."""
        if not request.sla.deferrable:
            return SchedulingDecision(
                release_time=request.submit_time,
                priority=self._edf_priority(request),
            )
        threshold = self.threshold if self.threshold is not None else tariff.min_price
        window = tariff.next_window_at_or_below(threshold, request.submit_time)
        if math.isinf(window):  # no qualifying plateau: run now
            window = request.submit_time
        return self._bounded_deferral(
            request, est_duration_s, window, reason="peak-price"
        )


@dataclass
class CarbonAware(DeferralPolicy):
    """Like :class:`PriceThreshold`, but chasing the grid's *cleanest*
    window (kgCO2/kWh) instead of its cheapest — e.g. the midday solar
    plateau of the ``green-midday`` trace."""

    name: str = "carbon-aware"
    threshold: Optional[float] = None
    safety: float = DEFAULT_SAFETY

    def schedule(
        self, request: TransferRequest, est_duration_s: Seconds, tariff: TariffTrace
    ) -> SchedulingDecision:
        """Defer deferrable jobs to the next at-or-below-threshold
        carbon window, bounded by the deadline-safety invariant applied
        to the solo duration estimate (``est_duration_s``, seconds)."""
        if not request.sla.deferrable:
            return SchedulingDecision(
                release_time=request.submit_time,
                priority=self._edf_priority(request),
            )
        threshold = self.threshold if self.threshold is not None else tariff.min_carbon
        window = tariff.next_window_at_or_below(
            threshold, request.submit_time, carbon=True
        )
        if math.isinf(window):
            window = request.submit_time
        return self._bounded_deferral(
            request, est_duration_s, window, reason="carbon"
        )


#: Name -> zero-argument factory (CLI / bench iteration).
POLICY_PRESETS = {
    "run-now": RunNow,
    "deadline-edf": DeadlineEDF,
    "price-threshold": PriceThreshold,
    "carbon-aware": CarbonAware,
}


def policy_by_name(name: str) -> DeferralPolicy:
    """Instantiate a deferral policy by preset name."""
    try:
        factory = POLICY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(POLICY_PRESETS)}"
        ) from None
    return factory()
