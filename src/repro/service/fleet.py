"""Fleet-scale sharded transfer service: many links, one report.

One :class:`~repro.service.simulate.ServiceSimulator` serves one
link's day well, but a provider operating at millions of jobs per day
runs a *fleet* of links. This module shards that scale: a
:class:`FleetSimulator` routes the day's requests across one service
shard per link (each an unmodified ``ServiceSimulator``), executes the
shards inline or behind a spawn-safe :class:`ProcessPoolExecutor`, and
folds the per-shard :class:`~repro.service.simulate.ServiceReport`\\ s
and observer summaries (via :func:`repro.obs.metrics.merge_summaries`)
into a single :class:`FleetReport` with fleet-wide and per-tenant /
per-shard kWh, dollars, kgCO2, deadline-miss rate and slowdown
percentiles.

Routing is deterministic (load-balancer heuristics, no RNG):

* ``tenant-hash`` — ``crc32(tenant) mod shards``: tenant affinity, the
  classic consistent-dispatch default;
* ``least-loaded`` — argmin of weight-relative backlog bytes at
  dispatch time (psim's least-loaded job placement);
* ``weighted`` — tenant hash mapped through the cumulative shard
  weights, so capacity-weighted shards draw proportional traffic;
* ``round-robin`` — strict rotation;
* ``topology-aware`` — shard = endpoint pair of a shared fabric
  (:func:`topology_pair_shards` carves one picklable per-pair spec per
  leaf/pod pair): the router water-fills every shard's byte backlog
  over the fabric (:func:`repro.topo.alloc.refill`, incremental per
  request), reads the allocator's live ``bottleneck_load``, and sends
  each job to the pair whose worst trunk is least pressured.

All of them compose with **work stealing**: when the chosen shard's
weight-relative backlog exceeds ``steal_threshold`` times the fleet
mean (its admission queue has saturated relative to its fair share),
the job is re-routed to the least-loaded shard at dispatch time —
deterministic, and visible as ``work_stolen`` events.

Warm starts follow psim's ``GContext`` idiom: a run exports every
shard's memoized planning entries (chunk plans plus their
``predict_plan_performance`` duration/energy estimates) as a picklable
:class:`FleetContext`; seeding the next run with it pre-populates each
shard's plan LRU so repeated dataset shapes never pay the
MinE/HTEE/SLAEE math again, across runs and across processes.

Determinism contract: same requests, seed, shard count, routing and
policy knobs → the same routing decisions and bit-identical simulated
quantities in the :class:`FleetReport` (timestamps, admission
decisions, energy/cost/carbon). Wall-clock fields (``wall_s``,
``jobs_per_sec``) measure the real machine and are excluded from the
contract. A single-shard fleet reproduces ``ServiceSimulator``
(``fast=True``) exactly.

(The sibling :mod:`repro.fleet` is the paper's *annualized projection*
model — same word, different axis: it extrapolates one link's day to a
year; this module actually simulates the fleet's day.)
"""

from __future__ import annotations

import itertools
import math
import os
import pickle
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Sequence
from functools import cached_property
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro import units
from repro.core.chunks import PartitionPolicy
from repro.obs.metrics import merge_summaries
from repro.obs.observer import Observer
from repro.service.policies import (
    PlanCacheEntry,
    export_plan_cache,
    seed_plan_cache,
)
from repro.service.requests import TransferRequest
from repro.service.scheduler import DeferralPolicy
from repro.service.simulate import (
    Intervention,
    JobResult,
    ServiceReport,
    ServiceSimulator,
    _fmt_pct,
    _percentile,
)
from repro.service.tariff import JOULES_PER_KWH, TariffTrace
from repro.testbeds.specs import Testbed
from repro.topo.alloc import AllocationResult, FlowDemand, refill
from repro.topo.core import (
    Topology,
    _float_param,
    _parse_params,
    build_topology,
)
from repro.units import Joules, Seconds

__all__ = [
    "ROUTING_POLICIES",
    "FleetContext",
    "FleetReport",
    "FleetSimulator",
    "RoutingResult",
    "ShardResult",
    "ShardSpec",
    "route_requests",
    "topology_pair_shards",
]

#: Deterministic dispatch heuristics understood by :func:`route_requests`.
ROUTING_POLICIES = (
    "tenant-hash", "least-loaded", "weighted", "round-robin",
    "topology-aware",
)


def _stable_hash(text: str) -> int:
    """A process-stable 32-bit hash (Python's ``hash`` is salted)."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# shard description and routing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One fleet shard: a named link/testbed with a routing weight.

    ``weight`` scales the shard's fair share under ``least-loaded`` /
    ``weighted`` routing and the work-stealing saturation test (a
    weight-2 shard is expected to carry twice the bytes).

    Under ``topology-aware`` routing a shard is one endpoint pair of a
    shared fabric: ``topology`` is the carved per-pair spec string its
    executor builds (picklable, so ProcessPool dispatch stays
    identity-safe), and ``bottlenecks`` names the fabric trunks the
    router registers the shard's backlog on.
    """

    name: str
    testbed: Testbed
    weight: float = 1.0
    topology: Optional[str] = None
    bottlenecks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard name must be non-empty")
        if not self.weight > 0:
            raise ValueError("shard weight must be > 0")


def topology_pair_shards(
    testbed: Testbed, topology: str
) -> list[ShardSpec]:
    """One shard per endpoint pair of a fleet fabric spec.

    ``leaf-spine:s=S,l=L`` yields ``L*(L-1)/2`` shards (one per
    unordered leaf pair), ``fat-tree:k=K`` one per pod pair. Each
    shard's carved spec keeps the fabric shape but pre-divides the
    shared capacity factors — an endpoint trunk is shared by the
    ``L-1`` (or ``K-1``) pairs touching it, a spine/core by every
    pair — so the independently simulated shards cannot jointly
    over-provision the fabric. ``bottlenecks`` names the pair's two
    endpoint trunks in the *fleet* fabric, which is what the
    topology-aware router registers backlog demand on.
    """
    kind, _, body = topology.partition(":")
    params = _parse_params(body)
    if kind == "leaf-spine":
        spines = int(_float_param(params, "s", 2))
        leaves = int(_float_param(params, "l", 4))
        leaf_f = _float_param(params, "leaf", 1.0)
        spine_f = _float_param(params, "spine", 1.0)
        if params:
            raise ValueError(
                f"unknown leaf-spine parameters: {sorted(params)}"
            )
        pairs = [(a, b) for a in range(leaves) for b in range(a + 1, leaves)]
        return [
            ShardSpec(
                name=f"p{a}-{b}",
                testbed=testbed,
                topology=(
                    f"leaf-spine:s={spines},l={leaves},"
                    f"leaf={leaf_f / (leaves - 1)!r},"
                    f"spine={spine_f / len(pairs)!r},pair={a}-{b}"
                ),
                bottlenecks=(f"leaf{a}", f"leaf{b}"),
            )
            for a, b in pairs
        ]
    if kind == "fat-tree":
        k = int(_float_param(params, "k", 4))
        edge_f = _float_param(params, "edge", 1.0)
        core_f = _float_param(params, "core", 1.0)
        if params:
            raise ValueError(
                f"unknown fat-tree parameters: {sorted(params)}"
            )
        pairs = [(a, b) for a in range(k) for b in range(a + 1, k)]
        return [
            ShardSpec(
                name=f"p{a}-{b}",
                testbed=testbed,
                topology=(
                    f"fat-tree:k={k},edge={edge_f / (k - 1)!r},"
                    f"core={core_f / len(pairs)!r},pair={a}-{b}"
                ),
                bottlenecks=(f"pod{a}", f"pod{b}"),
            )
            for a, b in pairs
        ]
    raise ValueError(
        "topology-aware sharding needs a multi-endpoint fabric "
        f"(leaf-spine or fat-tree), got {topology!r}"
    )


@dataclass(frozen=True)
class RoutingResult:
    """Deterministic dispatch outcome: per-shard request lists (in
    fleet submit order) plus stealing accounting."""

    buckets: tuple[tuple[TransferRequest, ...], ...]
    steals: int
    stolen_in: tuple[int, ...]
    stolen_out: tuple[int, ...]


def route_requests(
    requests: Sequence[TransferRequest],
    shards: Sequence[ShardSpec],
    *,
    routing: str = "tenant-hash",
    steal_threshold: Optional[float] = 4.0,
    observer: Optional[Observer] = None,
    topology: Optional[Topology] = None,
) -> RoutingResult:
    """Assign every request to a shard with the chosen heuristic.

    Requests are dispatched in ``(submit_time, name)`` order — the same
    canonical order :class:`~repro.service.simulate.ServiceSimulator`
    imposes — so the assignment is a pure function of the workload and
    the shard list, independent of caller ordering. Backlog is tracked
    in bytes (scaled by shard weight); with ``steal_threshold`` set, a
    chosen shard whose relative backlog exceeds ``threshold × fleet
    mean`` hands the job to the least-loaded shard instead (work
    stealing at dispatch time, so the decision is deterministic and
    reproducible from the same inputs).

    ``topology-aware`` routing additionally needs the fleet fabric
    ``topology`` and per-shard ``bottlenecks``: each dispatch
    water-fills every backlogged shard's bytes over the fabric
    (incrementally — :func:`repro.topo.alloc.refill` re-solves only
    the interference component the previous dispatch touched), then
    picks the shard whose worst endpoint trunk has the lowest
    ``(bottleneck_load + request bytes) / capacity`` pressure, ties to
    the lowest shard index.
    """
    if routing not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing {routing!r}; known: {', '.join(ROUTING_POLICIES)}"
        )
    if steal_threshold is not None and steal_threshold < 1.0:
        raise ValueError("steal_threshold must be >= 1.0 (or None to disable)")
    if not shards:
        raise ValueError("at least one shard is required")
    names = [spec.name for spec in shards]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate shard names: {sorted(names)}")
    if routing == "topology-aware":
        if topology is None:
            raise ValueError(
                "topology-aware routing requires the fleet fabric "
                "(pass topology=...)"
            )
        known = set(topology.bottlenecks)
        for spec in shards:
            if not spec.bottlenecks:
                raise ValueError(
                    f"shard {spec.name!r} declares no fabric bottlenecks "
                    "(required for topology-aware routing)"
                )
            unknown = [h for h in spec.bottlenecks if h not in known]
            if unknown:
                raise ValueError(
                    f"shard {spec.name!r} references unknown fabric "
                    f"bottleneck(s): {unknown}"
                )
    n = len(shards)
    prev_alloc: Optional[AllocationResult] = None
    weights = np.array([spec.weight for spec in shards], dtype=np.float64)
    total_weight = float(weights.sum())
    cumulative = np.cumsum(weights) / total_weight
    backlog = np.zeros(n, dtype=np.float64)
    buckets: list[list[TransferRequest]] = [[] for _ in range(n)]
    stolen_in = [0] * n
    stolen_out = [0] * n
    steals = 0
    rr = 0
    ordered = sorted(requests, key=lambda r: (r.submit_time, r.name))
    for request in ordered:
        if routing == "tenant-hash":
            chosen = _stable_hash(request.tenant) % n
        elif routing == "weighted":
            u = _stable_hash(request.tenant) / 2**32
            chosen = min(int(np.searchsorted(cumulative, u, side="right")), n - 1)
        elif routing == "round-robin":
            chosen = rr % n
            rr += 1
        elif routing == "topology-aware":
            assert topology is not None
            flows = [
                FlowDemand(spec.name, spec.bottlenecks, float(backlog[i]))
                for i, spec in enumerate(shards)
                if backlog[i] > 0.0
            ]
            prev_alloc = refill(topology, flows, prev_alloc)
            load = prev_alloc.bottleneck_load
            # Worst-trunk pressure first; allocated load saturates at
            # capacity, so ties (a fully loaded fabric) fall back to
            # weight-relative byte backlog, then lowest shard index.
            chosen = 0
            best: tuple[float, float] = (math.inf, math.inf)
            for i, spec in enumerate(shards):
                pressure = max(
                    (load.get(hop, 0.0) + request.total_bytes)
                    / topology.capacity(hop)
                    for hop in spec.bottlenecks
                )
                score = (pressure, float(backlog[i]) / shards[i].weight)
                if score < best:
                    best = score
                    chosen = i
        else:  # least-loaded
            chosen = int(np.argmin(backlog / weights))
        if steal_threshold is not None and n > 1 and backlog[chosen] > 0.0:
            relative = backlog / weights
            mean = float(backlog.sum()) / total_weight
            if float(relative[chosen]) > steal_threshold * mean:
                target = int(np.argmin(relative))
                if target != chosen:
                    if observer is not None:
                        observer.work_stolen(
                            request.submit_time,
                            request.name,
                            shards[chosen].name,
                            shards[target].name,
                        )
                    stolen_out[chosen] += 1
                    stolen_in[target] += 1
                    steals += 1
                    chosen = target
        buckets[chosen].append(request)
        backlog[chosen] += request.total_bytes
        if observer is not None:
            observer.job_routed(
                request.submit_time, request.name, shards[chosen].name
            )
    return RoutingResult(
        buckets=tuple(tuple(bucket) for bucket in buckets),
        steals=steals,
        stolen_in=tuple(stolen_in),
        stolen_out=tuple(stolen_out),
    )


# ----------------------------------------------------------------------
# warm-start context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetContext:
    """Portable warm-start context (psim ``GContext`` style).

    Carries the fleet's memoized planning entries — chunk plans plus
    their ``predict_plan_performance`` estimates — in a picklable,
    identity-free form. Seeding a run with a prior similar run's
    context pre-populates every shard's plan LRU, so repeated dataset
    shapes skip the MinE/HTEE/SLAEE math entirely, across processes
    and across runs (see :func:`repro.service.policies.seed_plan_cache`).
    """

    entries: tuple[PlanCacheEntry, ...] = ()
    source: str = ""

    def __len__(self) -> int:
        return len(self.entries)

    def save(self, path: Union[Path, str]) -> Path:
        """Pickle the context to ``path`` (plans are plain dataclasses)."""
        path = Path(path)
        with path.open("wb") as handle:
            pickle.dump(self, handle)
        return path

    @classmethod
    def load(cls, path: Union[Path, str]) -> "FleetContext":
        """Unpickle a context written by :meth:`save`."""
        try:
            with Path(path).open("rb") as handle:
                context = pickle.load(handle)
        except (pickle.UnpicklingError, ValueError, EOFError,
                AttributeError, ImportError) as exc:
            raise TypeError(
                f"{path} does not contain a FleetContext: {exc}"
            ) from exc
        if not isinstance(context, cls):
            raise TypeError(f"{path} does not contain a FleetContext")
        return context


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class ShardResult:
    """One shard's executed day plus its dispatch accounting.

    ``wall_s`` is real (machine) execution time of the shard's
    simulation — not simulated seconds — and is excluded from the
    determinism contract.
    """

    name: str
    weight: float
    routed_jobs: int
    stolen_in: int
    stolen_out: int
    wall_s: float
    report: ServiceReport


@dataclass
class FleetReport:
    """Merged fleet-wide view of every shard's service day.

    Aggregates are ``cached_property``\\ s computed once on first
    access (the report is read-only by convention, like
    :class:`~repro.service.simulate.ServiceReport`). Unlike a shard
    report, :meth:`to_dict` carries **no per-job rows** — at fleet
    scale (1M jobs) those belong in the shard reports, not in one JSON
    blob.
    """

    routing: str
    policy: str
    tariff: str
    shards: list[ShardResult] = field(default_factory=list)
    work_steals: int = 0
    #: Real dispatch wall-clock for the whole fleet run (seconds); the
    #: basis of ``jobs_per_sec`` / ``jobs_per_day``. Not simulated
    #: time, therefore outside the determinism contract.
    wall_s: float = 0.0
    #: Merged per-shard observer summaries
    #: (:func:`repro.obs.metrics.merge_summaries` output), or ``None``
    #: when the fleet ran unobserved.
    metrics: Optional[dict] = None

    # -- aggregates (computed once) -------------------------------------

    def _jobs(self) -> list[JobResult]:
        return [job for shard in self.shards for job in shard.report.jobs]

    @cached_property
    def jobs_total(self) -> int:
        return sum(len(shard.report.jobs) for shard in self.shards)

    @cached_property
    def total_bytes(self) -> int:
        return sum(shard.report.total_bytes for shard in self.shards)

    @cached_property
    def total_energy_j(self) -> Joules:
        return sum(shard.report.total_energy_j for shard in self.shards)

    @cached_property
    def total_cost_usd(self) -> float:
        return sum(shard.report.total_cost_usd for shard in self.shards)

    @cached_property
    def total_kg_co2(self) -> float:
        return sum(shard.report.total_kg_co2 for shard in self.shards)

    @cached_property
    def deferred_jobs(self) -> int:
        return sum(shard.report.deferred_jobs for shard in self.shards)

    @cached_property
    def deadline_miss_rate(self) -> float:
        """Misses over jobs that *have* deadlines, fleet-wide."""
        with_deadline = [j for j in self._jobs() if j.deadline is not None]
        if not with_deadline:
            return 0.0
        return sum(j.deadline_missed for j in with_deadline) / len(with_deadline)

    @cached_property
    def slowdowns(self) -> list[float]:
        return [s for shard in self.shards for s in shard.report.slowdowns]

    @cached_property
    def p50_slowdown(self) -> Optional[float]:
        """``None`` when no job finished fleet-wide."""
        return _percentile(self.slowdowns, 50.0)

    @cached_property
    def p95_slowdown(self) -> Optional[float]:
        """``None`` when no job finished fleet-wide."""
        return _percentile(self.slowdowns, 95.0)

    @cached_property
    def turnarounds(self) -> list[Seconds]:
        """Per-finished-job submit → complete latency (the tenant-visible
        end-to-end latency, for percentiles)."""
        return [j.turnaround_s for j in self._jobs() if j.finished]

    @cached_property
    def p95_turnaround_s(self) -> Optional[Seconds]:
        """``None`` when no job finished fleet-wide."""
        return _percentile(self.turnarounds, 95.0)

    @cached_property
    def truncated(self) -> bool:
        """True when any shard's day was cut off at ``max_time``."""
        return any(shard.report.truncated for shard in self.shards)

    @cached_property
    def unfinished_jobs(self) -> int:
        return sum(shard.report.unfinished_jobs for shard in self.shards)

    @cached_property
    def mean_turnaround_s(self) -> Seconds:
        if not self.turnarounds:
            return 0.0
        return sum(self.turnarounds) / len(self.turnarounds)

    @cached_property
    def mean_queue_wait_s(self) -> Seconds:
        admitted = [j for j in self._jobs() if j.admitted_at is not None]
        if not admitted:
            return 0.0
        return sum(j.queue_wait_s for j in admitted) / len(admitted)

    @cached_property
    def makespan_s(self) -> Seconds:
        """Largest shard makespan (shards simulate the same day in
        parallel, so the fleet's day ends with its slowest shard)."""
        return max((s.report.makespan_s for s in self.shards), default=0.0)

    @property
    def jobs_per_sec(self) -> float:
        """Simulated jobs per real second of fleet execution."""
        return self.jobs_total / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def jobs_per_day(self) -> float:
        """Throughput headline: jobs the fleet simulates per real day."""
        return self.jobs_per_sec * 86400.0

    @cached_property
    def per_tenant(self) -> dict[str, dict]:
        """Shard per-tenant rows merged fleet-wide (counters add; queue
        waits re-average weighted by job count)."""
        out: dict[str, dict] = {}
        for shard in self.shards:
            for tenant, row in shard.report.per_tenant.items():
                # weight by *admitted* jobs: a shard where this tenant
                # had nothing admitted contributes no wait mass, so a
                # zero-admitted tenant divides by 0 jobs nowhere and a
                # disjoint-tenant merge reproduces each shard's mean.
                if tenant not in out:
                    out[tenant] = dict(row)
                    out[tenant]["_wait_sum"] = (
                        row["mean_queue_wait_s"] * row["admitted"]
                    )
                    continue
                merged = out[tenant]
                for key in (
                    "jobs", "admitted", "bytes", "kwh", "cost_usd",
                    "kg_co2", "deferred", "deadline_misses",
                ):
                    merged[key] += row[key]
                merged["_wait_sum"] += row["mean_queue_wait_s"] * row["admitted"]
        for tenant in out:
            row = out[tenant]
            wait_sum = row.pop("_wait_sum")
            row["mean_queue_wait_s"] = (
                wait_sum / row["admitted"] if row["admitted"] else 0.0
            )
        return dict(sorted(out.items()))

    @cached_property
    def per_shard(self) -> list[dict]:
        """One JSON-safe summary row per shard, in shard order."""
        rows = []
        for shard in self.shards:
            report = shard.report
            rows.append({
                "shard": shard.name,
                "testbed": report.testbed,
                "weight": shard.weight,
                "jobs": len(report.jobs),
                "routed_jobs": shard.routed_jobs,
                "stolen_in": shard.stolen_in,
                "stolen_out": shard.stolen_out,
                "bytes": report.total_bytes,
                "kwh": report.total_energy_j / JOULES_PER_KWH,
                "cost_usd": report.total_cost_usd,
                "kg_co2": report.total_kg_co2,
                "deferred": report.deferred_jobs,
                "deadline_miss_rate": report.deadline_miss_rate,
                "p95_slowdown": report.p95_slowdown,
                "makespan_s": report.makespan_s,
                "truncated": report.truncated,
                "unfinished_jobs": report.unfinished_jobs,
                "wall_s": shard.wall_s,
            })
        return rows

    # -- serialization / rendering --------------------------------------

    def to_dict(self) -> dict:
        """Fleet totals, per-tenant and per-shard rows as a JSON-safe
        dict (no per-job rows — see class docstring)."""
        return {
            "routing": self.routing,
            "policy": self.policy,
            "tariff": self.tariff,
            "shards": len(self.shards),
            "jobs": self.jobs_total,
            "total_bytes": self.total_bytes,
            "total_gb": units.to_GB(self.total_bytes),
            "total_kwh": self.total_energy_j / JOULES_PER_KWH,
            "total_cost_usd": self.total_cost_usd,
            "total_kg_co2": self.total_kg_co2,
            "deferred_jobs": self.deferred_jobs,
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_slowdown": self.p50_slowdown,
            "p95_slowdown": self.p95_slowdown,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "p95_turnaround_s": self.p95_turnaround_s,
            "mean_turnaround_s": self.mean_turnaround_s,
            "makespan_s": self.makespan_s,
            "truncated": self.truncated,
            "unfinished_jobs": self.unfinished_jobs,
            "work_steals": self.work_steals,
            "wall_s": self.wall_s,
            "jobs_per_sec": self.jobs_per_sec,
            "jobs_per_day": self.jobs_per_day,
            "per_tenant": self.per_tenant,
            "per_shard": self.per_shard,
        }

    def render(self) -> str:
        """The fleet report as an aligned, human-readable block."""
        cutoff = (
            f" (TRUNCATED: {self.unfinished_jobs} unfinished)"
            if self.truncated
            else ""
        )
        turnaround = (
            "n/a"
            if self.p95_turnaround_s is None
            else f"{self.p95_turnaround_s:.0f} s"
        )
        lines = [
            f"Fleet day across {len(self.shards)} shards "
            f"(routing={self.routing}, policy={self.policy}, "
            f"tariff={self.tariff}):",
            f"  {self.jobs_total} jobs, {units.to_GB(self.total_bytes):.1f} GB, "
            f"makespan {self.makespan_s:.0f} s, "
            f"wall {self.wall_s:.1f} s "
            f"({self.jobs_per_sec:.0f} jobs/s, "
            f"{self.jobs_per_day:.3g} jobs/day){cutoff}",
            f"  energy {self.total_energy_j / JOULES_PER_KWH:.3f} kWh -> "
            f"${self.total_cost_usd:.4f}, {self.total_kg_co2:.4f} kgCO2",
            f"  deferred {self.deferred_jobs}, "
            f"deadline misses {self.deadline_miss_rate:.0%}, "
            f"slowdown p50 {_fmt_pct(self.p50_slowdown)} "
            f"/ p95 {_fmt_pct(self.p95_slowdown)}, "
            f"turnaround p95 {turnaround}, "
            f"steals {self.work_steals}",
        ]
        lines.append(
            f"  {'shard':<10s} {'jobs':>7s} {'GB':>9s} {'kWh':>8s} "
            f"{'$':>9s} {'kgCO2':>8s} {'miss':>5s} {'in/out':>7s} {'wall s':>7s}"
        )
        for row in self.per_shard:
            lines.append(
                f"  {row['shard']:<10s} {row['jobs']:>7d} "
                f"{units.to_GB(row['bytes']):>9.1f} {row['kwh']:>8.3f} "
                f"{row['cost_usd']:>9.4f} {row['kg_co2']:>8.4f} "
                f"{row['deadline_miss_rate']:>5.0%} "
                f"{row['stolen_in']:>3d}/{row['stolen_out']:<3d} "
                f"{row['wall_s']:>7.1f}"
            )
        lines.append(
            f"  {'tenant':<10s} {'jobs':>7s} {'GB':>9s} {'kWh':>8s} "
            f"{'$':>9s} {'kgCO2':>8s} {'defer':>5s} {'miss':>4s} {'wait s':>8s}"
        )
        for tenant, row in self.per_tenant.items():
            lines.append(
                f"  {tenant:<10s} {row['jobs']:>7d} "
                f"{units.to_GB(row['bytes']):>9.1f} {row['kwh']:>8.3f} "
                f"{row['cost_usd']:>9.4f} {row['kg_co2']:>8.4f} "
                f"{row['deferred']:>5d} {row['deadline_misses']:>4d} "
                f"{row['mean_queue_wait_s']:>8.0f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# shard execution (process-pool safe)
# ----------------------------------------------------------------------


def _run_shard(payload: dict) -> dict:
    """Execute one shard's service day and return picklable results.

    Top-level (not a closure/method) so a spawn-based
    :class:`ProcessPoolExecutor` can import it; everything it needs
    travels in the payload dict. Seeds the worker's plan cache from the
    warm-start entries first, and exports the (now warmer) cache back
    so the parent can accumulate context across runs.
    """
    spec: ShardSpec = payload["spec"]
    warm: Sequence[PlanCacheEntry] = payload["warm"]
    if warm:
        seed_plan_cache(spec.testbed, warm)
    observer = Observer() if payload["observe"] else None
    simulator = ServiceSimulator(
        spec.testbed,
        policy=payload["policy"],
        tariff=payload["tariff"],
        max_concurrent_jobs=payload["max_concurrent_jobs"],
        max_per_tenant=payload["max_per_tenant"],
        max_channels=payload["max_channels"],
        partition_policy=payload["partition_policy"],
        observer=observer,
        fast=payload["fast"],
        topology=payload.get("topology"),
        placement=payload.get("placement", "least-congested"),
        placement_seed=payload.get("placement_seed", 0),
    )
    start = time.perf_counter()  # repro: noqa[RPL002] — real shard wall-clock, reported outside the determinism contract
    report = simulator.run(
        payload["requests"],
        max_time=payload["max_time"],
        interventions=payload.get("interventions", ()),
        on_timeout=payload.get("on_timeout", "raise"),
    )
    wall_s = time.perf_counter() - start  # repro: noqa[RPL002] — see above
    return {
        "report": report,
        "wall_s": wall_s,
        "summary": observer.summary() if observer is not None else None,
        "export": export_plan_cache(spec.testbed),
    }


# ----------------------------------------------------------------------
# the fleet dispatcher
# ----------------------------------------------------------------------


class FleetSimulator:
    """Routes a day of tenant traffic across service shards and merges
    the results.

    Construct either with one ``testbed`` replicated ``shards`` times
    (a homogeneous fleet of identical links, shards named ``s0..sN``)
    or with explicit ``shard_specs`` (heterogeneous links and weights).
    Every per-shard knob (``max_concurrent_jobs``, ``max_per_tenant``,
    ``max_channels``, ``partition_policy``, ``fast``) is passed through
    to each shard's :class:`~repro.service.simulate.ServiceSimulator`
    unchanged, so a one-shard fleet reproduces the plain service
    exactly.

    ``workers`` bounds real parallelism: ``None`` picks
    ``min(shards, cpu_count)``; ``1`` runs shards inline (no process
    pool, no pickling); ``>1`` uses a :class:`ProcessPoolExecutor`,
    which requires picklable testbeds/policies/tariffs. Results are
    identical either way — shards are independent simulations.

    After :meth:`run`, ``last_context`` holds the accumulated
    :class:`FleetContext` (input context merged with every shard's
    exported plan entries, newest winning) ready to seed the next run.
    """

    def __init__(
        self,
        testbed: Optional[Testbed] = None,
        *,
        policy: DeferralPolicy,
        tariff: TariffTrace,
        shards: int = 8,
        shard_specs: Optional[Sequence[ShardSpec]] = None,
        routing: str = "tenant-hash",
        steal_threshold: Optional[float] = 4.0,
        max_concurrent_jobs: int = 4,
        max_per_tenant: Optional[int] = None,
        max_channels: int = 4,
        partition_policy: PartitionPolicy = PartitionPolicy(),
        observer: Optional[Observer] = None,
        fast: bool = True,
        workers: Optional[int] = None,
        warm_context: Optional[FleetContext] = None,
        topology: Optional[str] = None,
        placement: str = "least-congested",
        placement_seed: int = 0,
    ) -> None:
        if (testbed is None) == (shard_specs is None):
            raise ValueError("provide exactly one of testbed or shard_specs")
        if shard_specs is not None:
            self.shards: list[ShardSpec] = list(shard_specs)
            if not self.shards:
                raise ValueError("shard_specs must be non-empty")
        else:
            if shards < 1:
                raise ValueError("shards must be >= 1")
            assert testbed is not None
            self.shards = [
                ShardSpec(name=f"s{i}", testbed=testbed) for i in range(shards)
            ]
        names = [spec.name for spec in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {sorted(names)}")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {routing!r}; known: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if steal_threshold is not None and steal_threshold < 1.0:
            raise ValueError(
                "steal_threshold must be >= 1.0 (or None to disable)"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.policy = policy
        self.tariff = tariff
        self.routing = routing
        self.steal_threshold = steal_threshold
        self.max_concurrent_jobs = max_concurrent_jobs
        self.max_per_tenant = max_per_tenant
        self.max_channels = max_channels
        self.partition_policy = partition_policy
        self.observer = observer
        self.fast = fast
        #: Topology travels as a *spec string* (picklable; each shard
        #: builds its own fresh instance against its testbed's path).
        self.topology = topology
        self.placement = placement
        self.placement_seed = placement_seed
        self.workers = workers
        self.warm_context = warm_context
        #: Set by :meth:`run`: the accumulated warm-start context.
        self.last_context: Optional[FleetContext] = None
        #: The fleet fabric the topology-aware router water-fills over
        #: (built once here, never pickled — shards rebuild their own
        #: carved views from their spec strings).
        self._fabric: Optional[Topology] = None
        if routing == "topology-aware":
            if self.topology is None:
                raise ValueError(
                    "topology-aware routing requires a fleet topology "
                    "spec (pass topology='leaf-spine:...' or "
                    "'fat-tree:...')"
                )
            if shard_specs is None:
                # shard = endpoint pair: replace the homogeneous
                # s0..sN shards (the ``shards`` count is ignored) with
                # one carved shard per fabric pair
                assert testbed is not None
                self.shards = topology_pair_shards(testbed, self.topology)
            self._fabric = build_topology(
                self.topology,
                bandwidth=self.shards[0].testbed.path.bandwidth,
            )
            known = set(self._fabric.bottlenecks)
            for spec in self.shards:
                if not spec.bottlenecks:
                    raise ValueError(
                        f"shard {spec.name!r} declares no fabric "
                        "bottlenecks (required for topology-aware "
                        "routing)"
                    )
                unknown = [
                    h for h in spec.bottlenecks if h not in known
                ]
                if unknown:
                    raise ValueError(
                        f"shard {spec.name!r} references unknown fabric "
                        f"bottleneck(s): {unknown}"
                    )

    # ------------------------------------------------------------------

    def _payloads(
        self,
        routed: RoutingResult,
        max_time: Seconds,
        interventions: Sequence[Intervention],
        on_timeout: str,
    ) -> list[dict[str, Any]]:
        warm: tuple[PlanCacheEntry, ...] = (
            self.warm_context.entries if self.warm_context is not None else ()
        )
        observe = self.observer is not None
        return [
            {
                "spec": spec,
                "requests": list(bucket),
                "policy": self.policy,
                "tariff": self.tariff,
                "max_concurrent_jobs": self.max_concurrent_jobs,
                "max_per_tenant": self.max_per_tenant,
                "max_channels": self.max_channels,
                "partition_policy": self.partition_policy,
                "fast": self.fast,
                "topology": (
                    spec.topology
                    if spec.topology is not None
                    else self.topology
                ),
                "placement": self.placement,
                "placement_seed": self.placement_seed,
                "max_time": max_time,
                "observe": observe,
                "warm": warm,
                "interventions": tuple(interventions),
                "on_timeout": on_timeout,
            }
            for spec, bucket in zip(self.shards, routed.buckets, strict=True)
        ]

    def run(
        self,
        requests: Sequence[TransferRequest],
        *,
        max_time: Seconds = 1e7,
        interventions: Sequence[Intervention] = (),
        on_timeout: str = "raise",
    ) -> FleetReport:
        """Route, execute and merge one fleet day.

        ``max_time`` bounds each shard's *simulated* day; a shard that
        cannot finish raises
        :class:`~repro.netsim.multi.TransferTimeout`, exactly as the
        plain service does — unless ``on_timeout="report"`` asks for
        honestly-truncated shard reports instead.

        ``interventions`` (picklable :class:`Intervention` actions) are
        replayed *on every shard*: fleet-level chaos models shared
        weather — a brownout or tariff spike hits all links of the
        region at once — while per-shard fault isolation falls out of
        each shard owning its own executor state.
        """
        routed = route_requests(
            requests,
            self.shards,
            routing=self.routing,
            steal_threshold=self.steal_threshold,
            observer=self.observer,
            topology=self._fabric,
        )
        payloads = self._payloads(routed, max_time, interventions, on_timeout)
        if self.observer is not None:
            for spec, bucket in zip(self.shards, routed.buckets, strict=True):
                self.observer.shard_started(0.0, spec.name, len(bucket))
        n_workers = (
            self.workers
            if self.workers is not None
            else min(len(self.shards), os.cpu_count() or 1)
        )
        start = time.perf_counter()  # repro: noqa[RPL002] — real dispatch wall-clock, reported outside the determinism contract
        if n_workers <= 1 or len(self.shards) == 1:
            outs = [_run_shard(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                outs = list(pool.map(_run_shard, payloads))
        wall_s = time.perf_counter() - start  # repro: noqa[RPL002] — see above
        shard_results: list[ShardResult] = []
        summaries: list[dict] = []
        for i, (spec, out) in enumerate(zip(self.shards, outs, strict=True)):
            report: ServiceReport = out["report"]
            shard_results.append(
                ShardResult(
                    name=spec.name,
                    weight=spec.weight,
                    routed_jobs=len(routed.buckets[i]),
                    stolen_in=routed.stolen_in[i],
                    stolen_out=routed.stolen_out[i],
                    wall_s=out["wall_s"],
                    report=report,
                )
            )
            if out["summary"] is not None:
                summaries.append(out["summary"])
            if self.observer is not None:
                self.observer.shard_completed(
                    report.makespan_s, spec.name, len(report.jobs),
                    out["wall_s"],
                )
                if out["summary"] is not None:
                    self.observer.merge_summary(out["summary"])
        merged_metrics = merge_summaries(summaries) if summaries else None
        warm_entries: tuple[PlanCacheEntry, ...] = (
            self.warm_context.entries if self.warm_context is not None else ()
        )
        accumulated: dict[tuple, PlanCacheEntry] = {}
        for entry in itertools.chain(
            warm_entries, *(out["export"] for out in outs)
        ):
            accumulated[entry[:5]] = entry
        self.last_context = FleetContext(
            entries=tuple(accumulated.values()),
            source=f"fleet:{len(self.shards)}x{len(requests)}",
        )
        return FleetReport(
            routing=self.routing,
            policy=self.policy.name,
            tariff=self.tariff.name,
            shards=shard_results,
            work_steals=routed.steals,
            wall_s=wall_s,
            metrics=merged_metrics,
        )
