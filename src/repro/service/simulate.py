"""The service event loop: admission, execution, and accounting.

:class:`ServiceSimulator` is the piece that turns the paper's planners
into a *service*: tenants submit :class:`TransferRequest`\\ s over a
simulated day, a :class:`~repro.service.scheduler.DeferralPolicy`
decides when each becomes eligible, admission control (a concurrency
cap plus optional per-tenant fairness) decides who runs, and a capless
:class:`~repro.netsim.multi.MultiTransferSimulator` executes the
admitted jobs against the shared path.

Where the lower layers account joules, this layer accounts **dollars
and carbon at the time the joules are drawn**: every shared time step
prices each running job's energy delta at the tariff plateau in force
when the step began, so deferring an ENERGY-class job from the peak to
the off-peak plateau shows up directly as money saved — the paper's
"low-cost data transfer options ... in return for delayed transfers",
measured end to end.

The loop is deterministic (no RNG of its own). Two numerically
equivalent drivers execute the day:

* the **event-driven fast path** (``fast=True``, default) computes the
  next *service event* — pending arrival, deferred release, job
  completion, tariff plateau boundary — analytically, macro-steps the
  shared :class:`~repro.netsim.multi.MultiTransferSimulator` to it in
  one jump (:meth:`~repro.netsim.multi.MultiTransferSimulator.run_until`,
  which reuses the engine's event-horizon fast path), and bills each
  jump's energy delta against the single tariff plateau it provably
  lies in;
* the **dt-grid loop** (``fast=False``) is the golden reference: one
  shared ``dt`` step at a time, per-step billing, idle gaps skipped in
  whole ``dt`` multiples.

Both make identical admission decisions and produce bit-equal event
timestamps (all times live on the shared ``dt`` grid and ``dt`` is a
power of two); bytes, energy, cost and carbon agree to floating-point
round-off. This mirrors the engine's "fast path / fixed-dt duality"
one layer up.
"""

from __future__ import annotations

import copy
import heapq
import math
from dataclasses import dataclass, field
from collections import deque
from collections.abc import Sequence
from functools import cached_property
from typing import Optional, Protocol, Union, runtime_checkable

from repro import units
from repro.core.chunks import PartitionPolicy
from repro.netsim.multi import JobRecord, MultiTransferSimulator, TransferTimeout
from repro.obs.observer import Observer
from repro.topo.core import Topology
from repro.topo.placement import PLACEMENT_POLICIES
from repro.service.policies import JobPlan, plan_cache_info, plan_for
from repro.service.requests import TransferRequest
from repro.service.scheduler import DeferralPolicy, SchedulingDecision
from repro.service.tariff import JOULES_PER_KWH, TariffTrace
from repro.testbeds.specs import Testbed
from repro.units import Joules, Seconds

__all__ = ["Intervention", "JobResult", "ServiceReport", "ServiceSimulator"]


@runtime_checkable
class Intervention(Protocol):
    """A timed mid-day mutation of the running service (chaos hook).

    Implementations live in :mod:`repro.chaos.actions`; the service
    only relies on this structural interface so the dependency points
    chaos -> service, not the other way around. ``apply`` runs at the
    first loop iteration whose grid time is ``>= time`` (identically
    in the fast and grid drivers — both bound their jumps by the next
    intervention time, so neither ever steps across one) and returns a
    JSON-safe detail dict for the ``fault_injected`` event.
    """

    #: simulated time (seconds) at which the action fires
    time: Seconds
    #: short machine-readable action name (e.g. ``"link_brownout"``)
    kind: str

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict: ...


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class JobResult:
    """One request's full service-side lifecycle and bill."""

    name: str
    tenant: str
    sla: str
    algorithm: str
    submitted_at: Seconds
    released_at: Seconds
    admitted_at: Optional[Seconds] = None
    completed_at: Optional[Seconds] = None
    deadline: Optional[Seconds] = None
    deferral_reason: str = ""
    total_bytes: int = 0
    est_duration_s: Seconds = 0.0
    energy_j: Joules = 0.0
    cost_usd: float = 0.0
    kg_co2: float = 0.0

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    @property
    def deferred(self) -> bool:
        return bool(self.deferral_reason)

    @property
    def queue_wait_s(self) -> Seconds:
        """Submission -> admission wait in seconds (includes policy
        deferral)."""
        if self.admitted_at is None:
            return 0.0
        return self.admitted_at - self.submitted_at

    @property
    def duration_s(self) -> Seconds:
        """Admission -> completion in seconds (time actually
        transferring)."""
        if self.completed_at is None or self.admitted_at is None:
            return 0.0
        return self.completed_at - self.admitted_at

    @property
    def turnaround_s(self) -> Seconds:
        """Submission -> completion in seconds, the tenant-visible
        latency."""
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.submitted_at

    def slowdown(self, floor_s: Seconds = 1.0) -> float:
        """Turnaround over the job's solo duration estimate (>= 1-ish;
        deferral and queueing inflate it). ``floor_s`` (seconds) guards
        the ratio against near-zero estimates."""
        if self.completed_at is None:
            return math.inf
        return self.turnaround_s / max(self.est_duration_s, floor_s)

    @property
    def deadline_missed(self) -> bool:
        if self.deadline is None:
            return False
        if self.completed_at is None:
            return True  # unfinished past its deadline counts as a miss
        return self.completed_at > self.deadline + 1e-9

    def to_dict(self) -> dict:
        """The lifecycle and bill as a JSON-safe dict (derived fields
        included)."""
        return {
            "name": self.name,
            "tenant": self.tenant,
            "sla": self.sla,
            "algorithm": self.algorithm,
            "submitted_at": self.submitted_at,
            "released_at": self.released_at,
            "admitted_at": self.admitted_at,
            "completed_at": self.completed_at,
            "deadline": self.deadline,
            "deferral_reason": self.deferral_reason,
            "total_bytes": self.total_bytes,
            "est_duration_s": self.est_duration_s,
            "queue_wait_s": self.queue_wait_s,
            "duration_s": self.duration_s,
            "turnaround_s": self.turnaround_s,
            "slowdown": self.slowdown() if self.finished else None,
            "deadline_missed": self.deadline_missed,
            "energy_j": self.energy_j,
            "cost_usd": self.cost_usd,
            "kg_co2": self.kg_co2,
        }


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile (q in [0, 100]); ``None`` if
    empty — an all-miss day must not report the same ``0.0`` a perfect
    day would."""
    if not values:
        return None
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


def _fmt_pct(value: Optional[float]) -> str:
    """Render an optional percentile: ``n/a`` when no job finished."""
    return "n/a" if value is None else f"{value:.2f}"


@dataclass
class ServiceReport:
    """Fleet- and tenant-level totals for one service day.

    Aggregates are ``functools.cached_property``\\ s: they are computed
    (and, for the percentile fields, sorted) exactly once on first
    access, which matters for 100k-job reports whose ``render()`` +
    ``to_dict()`` would otherwise redo every reduction per field. The
    report is therefore *read-only by convention*: it is built once by
    :meth:`ServiceSimulator.run`, and mutating ``jobs`` afterwards
    leaves any already-computed aggregate stale.
    """

    testbed: str
    policy: str
    tariff: str
    jobs: list[JobResult] = field(default_factory=list)
    makespan_s: Seconds = 0.0
    #: True when the run was cut off at ``max_time`` with
    #: ``on_timeout="report"`` — unfinished jobs keep
    #: ``completed_at=None`` and count as deadline misses.
    truncated: bool = False
    #: Topology spec and placement policy the day ran under
    #: (``None``/``None`` for the classic point-to-point path).
    topology: Optional[str] = None
    placement: Optional[str] = None

    # -- aggregates (computed once; see class docstring) ----------------

    @cached_property
    def total_bytes(self) -> int:
        return sum(j.total_bytes for j in self.jobs)

    @cached_property
    def total_energy_j(self) -> Joules:
        """Joules drawn across all jobs in the report."""
        return sum(j.energy_j for j in self.jobs)

    @cached_property
    def total_cost_usd(self) -> float:
        return sum(j.cost_usd for j in self.jobs)

    @cached_property
    def total_kg_co2(self) -> float:
        return sum(j.kg_co2 for j in self.jobs)

    @cached_property
    def deferred_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.deferred)

    @cached_property
    def deadline_miss_rate(self) -> float:
        """Misses over jobs that *have* deadlines (0.0 if none do)."""
        with_deadline = [j for j in self.jobs if j.deadline is not None]
        if not with_deadline:
            return 0.0
        return sum(j.deadline_missed for j in with_deadline) / len(with_deadline)

    @cached_property
    def slowdowns(self) -> list[float]:
        """Per-finished-job slowdown factors (for percentiles)."""
        return [j.slowdown() for j in self.jobs if j.finished]

    @cached_property
    def finished_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.finished)

    @cached_property
    def unfinished_jobs(self) -> int:
        return len(self.jobs) - self.finished_jobs

    @cached_property
    def p50_slowdown(self) -> Optional[float]:
        """``None`` when no job finished (see :func:`_percentile`)."""
        return _percentile(self.slowdowns, 50.0)

    @cached_property
    def p95_slowdown(self) -> Optional[float]:
        """``None`` when no job finished (see :func:`_percentile`)."""
        return _percentile(self.slowdowns, 95.0)

    @cached_property
    def mean_queue_wait_s(self) -> Seconds:
        """Mean submission -> admission wait in seconds."""
        admitted = [j for j in self.jobs if j.admitted_at is not None]
        if not admitted:
            return 0.0
        return sum(j.queue_wait_s for j in admitted) / len(admitted)

    @cached_property
    def per_tenant(self) -> dict[str, dict]:
        """kWh/$/kgCO2/jobs/misses broken down by tenant."""
        groups: dict[str, list[JobResult]] = {}
        for job in self.jobs:
            groups.setdefault(job.tenant, []).append(job)
        out: dict[str, dict] = {}
        for tenant in sorted(groups):
            jobs = groups[tenant]
            with_deadline = [j for j in jobs if j.deadline is not None]
            admitted = [j for j in jobs if j.admitted_at is not None]
            out[tenant] = {
                "jobs": len(jobs),
                "admitted": len(admitted),
                "bytes": sum(j.total_bytes for j in jobs),
                "kwh": sum(j.energy_j for j in jobs) / JOULES_PER_KWH,
                "cost_usd": sum(j.cost_usd for j in jobs),
                "kg_co2": sum(j.kg_co2 for j in jobs),
                "deferred": sum(1 for j in jobs if j.deferred),
                "deadline_misses": sum(
                    1 for j in with_deadline if j.deadline_missed
                ),
                # averaged over *admitted* jobs only: never-admitted
                # jobs have no wait to report, and counting them as
                # zero would dilute the mean on a truncated day.
                "mean_queue_wait_s": (
                    sum(j.queue_wait_s for j in admitted) / len(admitted)
                    if admitted
                    else 0.0
                ),
            }
        return out

    # -- serialization / rendering --------------------------------------

    def to_dict(self) -> dict:
        """The full report (totals, per-tenant, per-job) as a
        JSON-safe dict."""
        return {
            "testbed": self.testbed,
            "policy": self.policy,
            "tariff": self.tariff,
            "jobs": len(self.jobs),
            "total_bytes": self.total_bytes,
            "total_gb": units.to_GB(self.total_bytes),
            "total_kwh": self.total_energy_j / JOULES_PER_KWH,
            "total_cost_usd": self.total_cost_usd,
            "total_kg_co2": self.total_kg_co2,
            "deferred_jobs": self.deferred_jobs,
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_slowdown": self.p50_slowdown,
            "p95_slowdown": self.p95_slowdown,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "makespan_s": self.makespan_s,
            "truncated": self.truncated,
            "topology": self.topology,
            "placement": self.placement,
            "unfinished_jobs": self.unfinished_jobs,
            "per_tenant": self.per_tenant,
            "job_results": [j.to_dict() for j in self.jobs],
        }

    def render(self) -> str:
        """The report as an aligned, human-readable block of text."""
        cutoff = (
            f" (TRUNCATED: {self.unfinished_jobs} unfinished)"
            if self.truncated
            else ""
        )
        routed = (
            f", topology={self.topology}, placement={self.placement}"
            if self.topology is not None
            else ""
        )
        lines = [
            f"Service day on {self.testbed} "
            f"(policy={self.policy}, tariff={self.tariff}{routed}):",
            f"  {len(self.jobs)} jobs, {units.to_GB(self.total_bytes):.1f} GB, "
            f"makespan {self.makespan_s:.0f} s{cutoff}",
            f"  energy {self.total_energy_j / JOULES_PER_KWH:.3f} kWh -> "
            f"${self.total_cost_usd:.4f}, {self.total_kg_co2:.4f} kgCO2",
            f"  deferred {self.deferred_jobs}, "
            f"deadline misses {self.deadline_miss_rate:.0%}, "
            f"slowdown p50 {_fmt_pct(self.p50_slowdown)} "
            f"/ p95 {_fmt_pct(self.p95_slowdown)}, "
            f"mean queue wait {self.mean_queue_wait_s:.0f} s",
        ]
        lines.append(
            f"  {'tenant':<10s} {'jobs':>4s} {'GB':>8s} {'kWh':>8s} "
            f"{'$':>9s} {'kgCO2':>8s} {'defer':>5s} {'miss':>4s} {'wait s':>8s}"
        )
        for tenant, row in self.per_tenant.items():
            lines.append(
                f"  {tenant:<10s} {row['jobs']:>4d} "
                f"{units.to_GB(row['bytes']):>8.1f} {row['kwh']:>8.3f} "
                f"{row['cost_usd']:>9.4f} {row['kg_co2']:>8.4f} "
                f"{row['deferred']:>5d} {row['deadline_misses']:>4d} "
                f"{row['mean_queue_wait_s']:>8.0f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------


@dataclass
class _JobState:
    """Book-keeping for one request inside the loop."""

    request: TransferRequest
    plan: JobPlan
    decision: SchedulingDecision
    result: JobResult
    seq: int
    record: Optional[JobRecord] = None  # set at admission
    last_energy: Joules = 0.0


class ServiceSimulator:
    """Runs one day of tenant traffic through plan -> defer -> admit ->
    execute -> account.

    Admission control lives *here* (not in the executor): each round,
    eligible waiting jobs — submitted, past their policy release time —
    are sorted by ``(priority, release, submit, seq)`` and admitted
    while slots remain under ``max_concurrent_jobs``; the optional
    ``max_per_tenant`` cap keeps one tenant's burst from occupying
    every slot. The underlying :class:`MultiTransferSimulator` runs
    capless and purely executes what this layer admits.

    ``fast=True`` (default) drives the day event-to-event instead of
    ``dt``-by-``dt``; ``fast=False`` is the golden-reference grid loop.
    Both produce identical admission decisions, bit-equal timestamps,
    and energy/cost/carbon equal at floating-point round-off (see the
    module docstring and ``tests/test_service_fastpath.py``).
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        policy: DeferralPolicy,
        tariff: TariffTrace,
        max_concurrent_jobs: int = 4,
        max_per_tenant: Optional[int] = None,
        max_channels: int = 4,
        partition_policy: PartitionPolicy = PartitionPolicy(),
        observer: Optional[Observer] = None,
        fast: bool = True,
        topology: Optional[Union[str, Topology]] = None,
        placement: str = "least-congested",
        placement_seed: int = 0,
    ) -> None:
        if max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        if max_per_tenant is not None and max_per_tenant < 1:
            raise ValueError("max_per_tenant must be >= 1")
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement!r}; known: "
                f"{', '.join(PLACEMENT_POLICIES)}"
            )
        self.testbed = testbed
        self.policy = policy
        self.tariff = tariff
        self.max_concurrent_jobs = max_concurrent_jobs
        self.max_per_tenant = max_per_tenant
        self.max_channels = max_channels
        self.partition_policy = partition_policy
        self.observer = observer
        self.fast = fast
        #: A spec string is rebuilt (and a Topology deep-copied) per
        #: ``run()``, so chaos scale mutations never leak across runs.
        self.topology = topology
        self.placement = placement
        self.placement_seed = placement_seed

    # ------------------------------------------------------------------

    def _prepare(self, requests: Sequence[TransferRequest]) -> list[_JobState]:
        """Plan and schedule every request up front (both are pure
        functions of the request, so doing it eagerly keeps the loop
        simple without changing any decision)."""
        cache_before = plan_cache_info()
        states: list[_JobState] = []
        seen: set[str] = set()
        for seq, request in enumerate(
            sorted(requests, key=lambda r: (r.submit_time, r.name))
        ):
            if request.name in seen:
                raise ValueError(f"duplicate request name {request.name!r}")
            seen.add(request.name)
            plan = plan_for(
                self.testbed, request, self.max_channels,
                partition_policy=self.partition_policy,
            )
            decision = self.policy.schedule(
                request, plan.est_duration_s, self.tariff
            )
            result = JobResult(
                name=request.name,
                tenant=request.tenant,
                sla=request.sla.label,
                algorithm=plan.algorithm,
                submitted_at=request.submit_time,
                released_at=decision.release_time,
                deadline=request.deadline,
                deferral_reason=decision.reason,
                total_bytes=plan.total_bytes,
                est_duration_s=plan.est_duration_s,
            )
            states.append(_JobState(request, plan, decision, result, seq))
        if self.observer is not None:
            cache_after = plan_cache_info()
            self.observer.plan_cache(
                cache_after["hits"] - cache_before["hits"],
                cache_after["misses"] - cache_before["misses"],
            )
        return states

    def _admit(
        self,
        now: Seconds,
        waiting: list[_JobState],
        running: list[_JobState],
        sim: MultiTransferSimulator,
    ) -> None:
        """Move eligible waiting jobs into the executor, best-first."""
        slots = self.max_concurrent_jobs - len(running)
        if slots <= 0:
            return
        eligible = [
            s for s in waiting if s.decision.release_time <= now + 1e-9
        ]
        eligible.sort(
            key=lambda s: (
                s.decision.priority,
                s.decision.release_time,
                s.request.submit_time,
                s.seq,
            )
        )
        tenant_running: dict[str, int] = {}
        for s in running:
            tenant_running[s.request.tenant] = (
                tenant_running.get(s.request.tenant, 0) + 1
            )
        for state in eligible:
            if slots <= 0:
                break
            tenant = state.request.tenant
            if (
                self.max_per_tenant is not None
                and tenant_running.get(tenant, 0) >= self.max_per_tenant
            ):
                continue
            state.record = sim.submit(
                state.request.name, state.plan.plans, arrival_time=now
            )
            state.result.admitted_at = now
            waiting.remove(state)
            running.append(state)
            tenant_running[tenant] = tenant_running.get(tenant, 0) + 1
            slots -= 1
            if self.observer is not None:
                self.observer.job_admitted(
                    now, state.request.name, state.result.queue_wait_s
                )

    def _finalize(self, state: _JobState, now: Seconds) -> None:
        """Close a completed job's books and emit its events."""
        state.result.completed_at = state.record.completion_time
        if self.observer is not None:
            self.observer.job_completed(
                now,
                state.request.name,
                state.result.duration_s,
                state.result.energy_j,
                state.result.cost_usd,
            )
            if state.result.deadline_missed:
                self.observer.deadline_missed(
                    now,
                    state.request.name,
                    state.result.deadline,
                    state.result.completed_at,
                )

    @staticmethod
    def _timeout(
        max_time: Seconds, unfinished: list[str]
    ) -> TransferTimeout:
        return TransferTimeout(
            f"service run hit max_time={max_time:g} s with "
            f"{len(unfinished)} unfinished job(s): " + ", ".join(unfinished)
        )

    def run(
        self,
        requests: Sequence[TransferRequest],
        *,
        max_time: Seconds = 1e7,
        interventions: Sequence[Intervention] = (),
        on_timeout: str = "raise",
    ) -> ServiceReport:
        """Run every request to completion and return the day's report.

        ``interventions`` is an optional sequence of timed
        :class:`Intervention` actions (chaos faults, tariff swaps, …)
        applied mid-day at their scheduled sim times — identically in
        the fast and grid drivers, which both bound their jumps by the
        next intervention time.

        If ``max_time`` simulated seconds pass with jobs still
        unfinished, ``on_timeout="raise"`` (default) raises
        :class:`~repro.netsim.multi.TransferTimeout` — a truncated day
        must not masquerade as a cheap one — while
        ``on_timeout="report"`` returns an honestly-truncated report:
        ``truncated=True``, unfinished jobs keep ``completed_at=None``
        (counting as deadline misses), and the slowdown percentiles
        are ``None`` when nothing finished.
        """
        if on_timeout not in ("raise", "report"):
            raise ValueError(
                f"on_timeout must be 'raise' or 'report', got {on_timeout!r}"
            )
        states = self._prepare(requests)
        actions = sorted(
            interventions, key=lambda a: a.time
        )  # stable: ties keep caller order
        topology = self.topology
        if isinstance(topology, Topology):
            # each run gets its own copy: interventions scale
            # bottleneck capacities in place
            topology = copy.deepcopy(topology)
        sim = MultiTransferSimulator(
            self.testbed,
            max_concurrent_jobs=None,
            topology=topology,
            placement=self.placement,
            placement_seed=self.placement_seed,
            observer=self.observer,
        )
        if self.fast:
            truncated = self._run_fast(states, sim, max_time, actions, on_timeout)
        else:
            truncated = self._run_grid(states, sim, max_time, actions, on_timeout)
        # close the day's coalesced allocation-cache stretch (if any)
        sim.flush_topo_events()
        report = ServiceReport(
            testbed=self.testbed.name,
            policy=self.policy.name,
            tariff=self.tariff.name,
            jobs=[s.result for s in sorted(states, key=lambda s: s.seq)],
            makespan_s=sim.makespan,
            truncated=truncated,
            topology=(
                None if sim.topology is None
                else (self.topology if isinstance(self.topology, str)
                      else sim.topology.name)
            ),
            placement=None if sim.topology is None else self.placement,
        )
        return report

    def _apply_interventions(
        self,
        now: Seconds,
        actions: list[Intervention],
        iv_idx: int,
        running: list[_JobState],
        sim: MultiTransferSimulator,
    ) -> int:
        """Fire every intervention due at ``now`` (shared by both
        drivers so the mutation order — and hence every downstream
        decision — is identical). Returns the new queue index."""
        fired = False
        while iv_idx < len(actions) and actions[iv_idx].time <= now + 1e-9:
            action = actions[iv_idx]
            iv_idx += 1
            detail = action.apply(self, sim)
            fired = True
            if self.observer is not None:
                self.observer.fault_injected(now, action.kind, detail)
        if fired and running and self.policy.reroute_on_failure:
            # recovery hook: re-open channels for jobs stranded with
            # no transport (e.g. every channel cut) — policies can opt
            # out via ``reroute_on_failure = False``.
            readmitted = sim.readmit_stranded()
            if readmitted and self.observer is not None:
                self.observer.jobs_readmitted(now, len(readmitted))
        return iv_idx

    # -- golden reference: the dt-grid loop ----------------------------

    def _run_grid(
        self,
        states: list[_JobState],
        sim: MultiTransferSimulator,
        max_time: Seconds,
        actions: list[Intervention],
        on_timeout: str,
    ) -> bool:
        dt = sim.dt
        pending = deque(states)     # not yet submitted (future arrivals)
        waiting: list[_JobState] = []  # submitted, not yet admitted
        running: list[_JobState] = []  # admitted, transferring
        done: list[_JobState] = []
        iv_idx = 0

        while len(done) < len(states):
            now = sim.time
            if now >= max_time:
                if on_timeout == "report":
                    return True
                raise self._timeout(
                    max_time,
                    [s.request.name for s in [*pending, *waiting, *running]],
                )

            # 0. chaos interventions due at this grid point
            iv_idx = self._apply_interventions(
                now, actions, iv_idx, running, sim
            )

            # 1. ingest submissions whose time has come
            while pending and pending[0].request.submit_time <= now + 1e-9:
                state = pending.popleft()
                waiting.append(state)
                if self.observer is not None:
                    self.observer.job_submitted(
                        now,
                        state.request.name,
                        state.request.tenant,
                        state.request.sla.label,
                    )
                    if state.decision.deferred:
                        self.observer.job_deferred(
                            now,
                            state.request.name,
                            state.decision.release_time,
                            state.decision.reason,
                        )

            # 2. admission under the cap and per-tenant fairness
            self._admit(now, waiting, running, sim)

            if running:
                # 3. one shared step, priced at the tariff in force now
                for state in running:
                    state.last_energy = state.record.energy_joules
                sim.step()
                finished: list[_JobState] = []
                for state in running:
                    delta = state.record.energy_joules - state.last_energy
                    if delta > 0:
                        state.result.energy_j += delta
                        state.result.cost_usd += self.tariff.cost(delta, now)
                        state.result.kg_co2 += self.tariff.carbon(delta, now)
                    if state.record.finished:
                        finished.append(state)
                for state in finished:
                    running.remove(state)
                    done.append(state)
                    self._finalize(state, sim.time)
            else:
                # 4. idle: jump (on the dt grid) to the next submission
                #    or release, keeping step timestamps identical to a
                #    naive step-by-step run.
                horizons = (
                    [pending[0].request.submit_time] if pending else []
                )
                horizons += [s.decision.release_time for s in waiting]
                if iv_idx < len(actions):
                    horizons.append(actions[iv_idx].time)
                target = min(horizons) if horizons else math.inf
                if math.isinf(target):
                    raise RuntimeError(
                        "service loop stalled: no running jobs and no "
                        "future events"
                    )
                steps = max(1, math.ceil((target - now - 1e-9) / dt))
                sim.time += steps * dt
        return False

    # -- event-driven fast path ----------------------------------------

    def _admit_fast(
        self,
        now: Seconds,
        eligible: list[tuple[float, Seconds, Seconds, int, _JobState]],
        running: list[_JobState],
        sim: MultiTransferSimulator,
    ) -> None:
        """Heap-based admission, identical selection order to
        :meth:`_admit`: pop eligible jobs best-first (same
        ``(priority, release, submit, seq)`` key), skip tenant-capped
        ones to the side, stop when the slots run out, push the
        skipped ones back."""
        slots = self.max_concurrent_jobs - len(running)
        if slots <= 0 or not eligible:
            return
        tenant_running: dict[str, int] = {}
        for s in running:
            tenant_running[s.request.tenant] = (
                tenant_running.get(s.request.tenant, 0) + 1
            )
        skipped: list[tuple[float, Seconds, Seconds, int, _JobState]] = []
        while eligible and slots > 0:
            entry = heapq.heappop(eligible)
            state = entry[4]
            tenant = state.request.tenant
            if (
                self.max_per_tenant is not None
                and tenant_running.get(tenant, 0) >= self.max_per_tenant
            ):
                skipped.append(entry)
                continue
            state.record = sim.submit(
                state.request.name, state.plan.plans, arrival_time=now
            )
            state.result.admitted_at = now
            running.append(state)
            tenant_running[tenant] = tenant_running.get(tenant, 0) + 1
            slots -= 1
            if self.observer is not None:
                self.observer.job_admitted(
                    now, state.request.name, state.result.queue_wait_s
                )
        for entry in skipped:
            heapq.heappush(eligible, entry)

    def _run_fast(
        self,
        states: list[_JobState],
        sim: MultiTransferSimulator,
        max_time: Seconds,
        actions: list[Intervention],
        on_timeout: str,
    ) -> bool:
        """The event-driven day: jump from service event to service
        event instead of grinding the ``dt`` grid.

        While the running set is frozen — no pending arrival, no
        deferred release, no completion, no tariff plateau boundary
        before the horizon — nothing this layer does at a grid point
        can differ from doing nothing: submissions/releases are not
        due (their times bound the horizon), admission cannot change
        (slots only free at completions, where
        :meth:`MultiTransferSimulator.run_until` returns), and every
        executed step starts inside one tariff plateau (so per-jump
        billing at that plateau's price equals the grid loop's
        per-step billing). ``run_until`` supplies the execution-side
        guarantees (engine event horizons, cross-job stream-count
        stability) and stops at completions; idle gaps are jumped on
        the grid exactly like the reference loop.
        """
        dt = sim.dt
        observer = self.observer
        # NOTE: ``self.tariff`` is read afresh each round (never cached
        # in a local) so a mid-day ``TariffSwap`` intervention reprices
        # the very next jump, exactly like the grid loop's per-step
        # ``self.tariff.cost`` calls.
        pending = deque(states)     # not yet submitted (future arrivals)
        #: submitted, release time still in the future — keyed so the
        #: top is the next release
        future: list[tuple[Seconds, int, _JobState]] = []
        #: submitted and past release — keyed by admission preference
        eligible: list[tuple[float, Seconds, Seconds, int, _JobState]] = []
        running: list[_JobState] = []
        done: list[_JobState] = []
        last_macro_rounds = 0
        last_macro_dts = 0
        iv_idx = 0

        def eligible_entry(
            state: _JobState,
        ) -> tuple[float, Seconds, Seconds, int, _JobState]:
            return (
                state.decision.priority,
                state.decision.release_time,
                state.request.submit_time,
                state.seq,
                state,
            )

        while len(done) < len(states):
            now = sim.time
            if now >= max_time:
                if on_timeout == "report":
                    return True
                waiting = sorted(
                    [entry[2] for entry in future]
                    + [entry[4] for entry in eligible],
                    key=lambda s: s.seq,
                )
                raise self._timeout(
                    max_time,
                    [s.request.name for s in [*pending, *waiting, *running]],
                )

            # 0. chaos interventions due at this grid point
            iv_idx = self._apply_interventions(
                now, actions, iv_idx, running, sim
            )

            # 1. ingest submissions whose time has come
            while pending and pending[0].request.submit_time <= now + 1e-9:
                state = pending.popleft()
                if observer is not None:
                    observer.job_submitted(
                        now,
                        state.request.name,
                        state.request.tenant,
                        state.request.sla.label,
                    )
                    if state.decision.deferred:
                        observer.job_deferred(
                            now,
                            state.request.name,
                            state.decision.release_time,
                            state.decision.reason,
                        )
                if state.decision.release_time <= now + 1e-9:
                    heapq.heappush(eligible, eligible_entry(state))
                else:
                    heapq.heappush(
                        future,
                        (state.decision.release_time, state.seq, state),
                    )

            # 2. deferred releases whose time has come
            while future and future[0][0] <= now + 1e-9:
                _release, _seq, state = heapq.heappop(future)
                heapq.heappush(eligible, eligible_entry(state))

            # 3. admission under the cap and per-tenant fairness
            self._admit_fast(now, eligible, running, sim)

            if running:
                # 4. jump to the next service event; bill the energy
                #    drawn during the jump at the single plateau every
                #    executed step start provably lies in.
                price, carbon, boundary = self.tariff.plateau(now)
                # bound by max_time itself (not max_time + dt): the
                # grid loop stops at the first grid point >= max_time,
                # and running one step past it could record a
                # completion the reference never would.
                horizon = min(boundary, max_time)
                if pending:
                    horizon = min(horizon, pending[0].request.submit_time)
                if future:
                    horizon = min(horizon, future[0][0])
                if iv_idx < len(actions):
                    # never macro-step across an intervention: the
                    # fault must land on the same grid point in both
                    # drivers (fast-path invalidation contract).
                    horizon = min(horizon, actions[iv_idx].time)
                if horizon <= now + 1e-9:
                    # the event sits in the epsilon sliver just above
                    # ``now`` (e.g. a non-grid-aligned plateau edge):
                    # take one exact step, billed — as the grid loop
                    # bills it — at the plateau in force at its start.
                    horizon = now + dt
                for state in running:
                    assert state.record is not None
                    state.last_energy = state.record.energy_joules
                sim.run_until(horizon)
                finished: list[_JobState] = []
                for state in running:
                    assert state.record is not None
                    delta = state.record.energy_joules - state.last_energy
                    if delta > 0:
                        kwh = delta / JOULES_PER_KWH
                        state.result.energy_j += delta
                        state.result.cost_usd += kwh * price
                        state.result.kg_co2 += kwh * carbon
                    if state.record.finished:
                        finished.append(state)
                if observer is not None:
                    d_rounds = sim.macro_rounds - last_macro_rounds
                    d_dts = sim.macro_stepped_dts - last_macro_dts
                    if d_rounds:
                        observer.service_macro_step(
                            now, d_dts, d_dts * dt, d_rounds
                        )
                    last_macro_rounds = sim.macro_rounds
                    last_macro_dts = sim.macro_stepped_dts
                for state in finished:
                    running.remove(state)
                    done.append(state)
                    self._finalize(state, sim.time)
            else:
                # 5. idle: jump (on the dt grid) to the next submission
                #    or release — the same arithmetic as the reference
                #    loop, so timestamps stay bit-equal.
                horizons = (
                    [pending[0].request.submit_time] if pending else []
                )
                if future:
                    horizons.append(future[0][0])
                if eligible:
                    horizons.append(now)  # slot-capped: advance one dt
                if iv_idx < len(actions):
                    horizons.append(actions[iv_idx].time)
                target = min(horizons) if horizons else math.inf
                if math.isinf(target):
                    raise RuntimeError(
                        "service loop stalled: no running jobs and no "
                        "future events"
                    )
                steps = max(1, math.ceil((target - now - 1e-9) / dt))
                sim.time += steps * dt
        return False
