"""Provider-scale energy and cost projection.

The paper's motivation is economic: world-wide data movement burns an
estimated 450 TWh / ~90 billion USD per year, and "the service
providers can possibly offer low-cost data transfer options to their
customers in return for delayed transfers". This module turns one
measured transfer into fleet-scale numbers: a provider runs a daily mix
of transfer jobs on a path; choosing an energy-aware policy instead of
a throughput-first one changes the annual kWh, dollars and CO2.

Everything is computed from actual simulated runs (one per distinct
job class and policy — results are cached, the jobs are deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.baselines import ProMCAlgorithm
from repro.core.htee import HTEEAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.core.scheduler import TransferOutcome
from repro.core.slaee import SLAEEAlgorithm
from repro.datasets.files import Dataset
from repro.service.tariff import TariffTrace
from repro.testbeds.specs import Testbed

__all__ = [
    "TariffModel",
    "JobClass",
    "PolicyReport",
    "FleetModel",
    "WORLD_TRANSFER_TWH_PER_YEAR",
    "global_projection_twh",
]

#: The paper's Introduction: "The annual electricity consumed by these
#: data transfers worldwide is estimated to be 450 Terawatt hours".
WORLD_TRANSFER_TWH_PER_YEAR = 450.0

_JOULES_PER_KWH = 3.6e6
_DAYS_PER_YEAR = 365


@dataclass(frozen=True)
class TariffModel:
    """Electricity price and carbon intensity of the provider's grid.

    By default the grid is flat: every joule costs
    ``dollars_per_kwh`` regardless of the hour. Attach a time-of-use
    ``schedule`` (a :class:`~repro.service.tariff.TariffTrace`) and
    pass ``start`` (+ optionally ``duration``) to :meth:`dollars` /
    :meth:`kg_co2` to price energy at the plateau(s) actually in force
    — the same trace objects the service layer's deferral policies
    hunt windows in. Calls without ``start`` keep the flat behaviour,
    so every pre-schedule caller is unchanged.
    """

    dollars_per_kwh: float = 0.08
    kg_co2_per_kwh: float = 0.37  # US grid average
    schedule: Optional[TariffTrace] = None

    def __post_init__(self) -> None:
        if self.dollars_per_kwh < 0 or self.kg_co2_per_kwh < 0:
            raise ValueError("tariff values must be >= 0")

    @classmethod
    def from_trace(cls, trace: TariffTrace) -> "TariffModel":
        """A TOU tariff whose flat fallback is the trace's time mean."""
        return cls(
            dollars_per_kwh=trace.mean_price,
            kg_co2_per_kwh=trace.mean_carbon,
            schedule=trace,
        )

    def price_at(self, t: float) -> float:
        """$/kWh at absolute time ``t`` (flat rate without a schedule)."""
        if self.schedule is None:
            return self.dollars_per_kwh
        return self.schedule.price_at(t)

    def carbon_at(self, t: float) -> float:
        """kgCO2/kWh at absolute time ``t``."""
        if self.schedule is None:
            return self.kg_co2_per_kwh
        return self.schedule.carbon_at(t)

    def dollars(
        self, joules: float, *, start: Optional[float] = None,
        duration: float = 0.0,
    ) -> float:
        """Electricity cost of ``joules`` at this tariff.

        With a schedule and a ``start`` time, the energy is priced over
        ``[start, start + duration]`` at the schedule's plateaus;
        otherwise at the flat rate.
        """
        if self.schedule is not None and start is not None:
            return self.schedule.cost(joules, start, duration)
        return joules / _JOULES_PER_KWH * self.dollars_per_kwh

    def kg_co2(
        self, joules: float, *, start: Optional[float] = None,
        duration: float = 0.0,
    ) -> float:
        """Emissions attributable to ``joules`` at this grid intensity."""
        if self.schedule is not None and start is not None:
            return self.schedule.carbon(joules, start, duration)
        return joules / _JOULES_PER_KWH * self.kg_co2_per_kwh


@dataclass(frozen=True)
class JobClass:
    """One recurring transfer job: a dataset and how often it runs.

    ``start_hour`` (0-24, optional) anchors the class's daily runs on
    the tariff clock; with a TOU :class:`TariffModel` schedule, the
    job's energy is then priced at the plateaus it actually spans
    (a 2 a.m. backup is billed off-peak, a noon sync at peak).
    Without it the class is priced at the flat/mean rate.
    """

    name: str
    dataset_factory: Callable[[], Dataset]
    jobs_per_day: float
    sla_level: Optional[float] = None  # only used by the "slaee" policy
    start_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if self.jobs_per_day < 0:
            raise ValueError("jobs_per_day must be >= 0")
        if self.sla_level is not None and not (0 < self.sla_level <= 1):
            raise ValueError("sla_level must be in (0, 1]")
        if self.start_hour is not None and not (0 <= self.start_hour < 24):
            raise ValueError("start_hour must be in [0, 24)")


@dataclass(frozen=True)
class PolicyReport:
    """Annualized consequences of running the fleet under one policy."""

    policy: str
    annual_jobs: float
    annual_energy_kwh: float
    annual_transfer_hours: float
    annual_cost_dollars: float
    annual_kg_co2: float

    def savings_vs(self, baseline: "PolicyReport") -> float:
        """Fractional annual energy saving relative to ``baseline``."""
        if baseline.annual_energy_kwh <= 0:
            raise ValueError("baseline energy must be > 0")
        return 1.0 - self.annual_energy_kwh / baseline.annual_energy_kwh


class FleetModel:
    """A transfer service: one path, a daily job mix, a policy choice."""

    #: Policies a provider can operate the fleet under.
    POLICIES = ("promc", "htee", "mine", "slaee")

    def __init__(
        self,
        testbed: Testbed,
        job_classes: list[JobClass],
        *,
        tariff: TariffModel = TariffModel(),
        max_channels: Optional[int] = None,
    ) -> None:
        if not job_classes:
            raise ValueError("need at least one job class")
        self.testbed = testbed
        self.job_classes = list(job_classes)
        self.tariff = tariff
        self.max_channels = (
            max_channels if max_channels is not None else testbed.sla_reference_concurrency
        )
        self._run_cache: dict[tuple[str, str], TransferOutcome] = {}
        self._reference: dict[str, TransferOutcome] = {}

    # ------------------------------------------------------------------

    def _reference_run(self, job: JobClass) -> TransferOutcome:
        """ProMC at the reference concurrency: the path's peak, used as
        the SLA baseline and as the throughput-first policy."""
        if job.name not in self._reference:
            self._reference[job.name] = ProMCAlgorithm().run(
                self.testbed, job.dataset_factory(), self.max_channels
            )
        return self._reference[job.name]

    def _run(self, policy: str, job: JobClass) -> TransferOutcome:
        key = (policy, job.name)
        if key in self._run_cache:
            return self._run_cache[key]
        dataset = job.dataset_factory()
        if policy == "promc":
            outcome = self._reference_run(job)
        elif policy == "htee":
            outcome = HTEEAlgorithm().run(self.testbed, dataset, self.max_channels)
        elif policy == "mine":
            outcome = MinEAlgorithm().run(self.testbed, dataset, self.max_channels)
        elif policy == "slaee":
            reference = self._reference_run(job)
            level = job.sla_level if job.sla_level is not None else 0.8
            outcome = SLAEEAlgorithm().run(
                self.testbed,
                dataset,
                max(self.max_channels, self.testbed.brute_force_max_concurrency),
                sla_level=level,
                max_throughput=reference.throughput,
            )
        else:
            raise KeyError(f"unknown policy {policy!r}; known: {self.POLICIES}")
        self._run_cache[key] = outcome
        return outcome

    # ------------------------------------------------------------------

    def report(self, policy: str) -> PolicyReport:
        """Annualized energy/cost/CO2 of running every job under ``policy``.

        With a TOU tariff schedule, classes that declare a
        ``start_hour`` are billed at the plateaus their daily run
        actually spans; the rest (and all classes on a flat tariff)
        are billed at the flat/mean rate.
        """
        joules = hours = jobs = dollars = kg = 0.0
        for job in self.job_classes:
            outcome = self._run(policy, job)
            annual = job.jobs_per_day * _DAYS_PER_YEAR
            jobs += annual
            joules += outcome.energy_joules * annual
            hours += outcome.duration_s / 3600.0 * annual
            start = (
                job.start_hour * 3600.0 if job.start_hour is not None else None
            )
            dollars += annual * self.tariff.dollars(
                outcome.energy_joules, start=start, duration=outcome.duration_s
            )
            kg += annual * self.tariff.kg_co2(
                outcome.energy_joules, start=start, duration=outcome.duration_s
            )
        kwh = joules / _JOULES_PER_KWH
        return PolicyReport(
            policy=policy,
            annual_jobs=jobs,
            annual_energy_kwh=kwh,
            annual_transfer_hours=hours,
            annual_cost_dollars=dollars,
            annual_kg_co2=kg,
        )

    def compare(self, policies: Optional[list[str]] = None) -> list[PolicyReport]:
        """Reports for several policies (default: all four)."""
        return [self.report(p) for p in (policies or list(self.POLICIES))]

    def render_comparison(self, policies: Optional[list[str]] = None) -> str:
        """A text table of the policy comparison, ProMC as the baseline."""
        reports = self.compare(policies)
        baseline = next((r for r in reports if r.policy == "promc"), reports[0])
        lines = [
            f"{'policy':>8s} {'energy kWh/yr':>14s} {'cost $/yr':>11s} "
            f"{'CO2 kg/yr':>10s} {'busy h/yr':>10s} {'vs ProMC':>9s}"
        ]
        for report in reports:
            saving = report.savings_vs(baseline)
            lines.append(
                f"{report.policy:>8s} {report.annual_energy_kwh:14.1f} "
                f"{report.annual_cost_dollars:11.2f} {report.annual_kg_co2:10.1f} "
                f"{report.annual_transfer_hours:10.1f} {100 * saving:+8.1f}%"
            )
        return "\n".join(lines)


def global_projection_twh(savings_fraction: float, end_system_share: float = 0.25) -> float:
    """World-scale TWh/year saved if every end-system adopted a policy
    saving ``savings_fraction`` of end-system transfer energy.

    ``end_system_share`` is the paper's "at least one quarter of the
    data transfer power consumption happens at the end-systems".
    """
    if not (0 <= savings_fraction <= 1):
        raise ValueError("savings_fraction must be in [0, 1]")
    if not (0 < end_system_share <= 1):
        raise ValueError("end_system_share must be in (0, 1]")
    return WORLD_TRANSFER_TWH_PER_YEAR * end_system_share * savings_fraction
