"""Provider-scale energy/cost projection built on the transfer
algorithms (the paper's economic motivation, made computable)."""

from repro.fleet.model import (
    WORLD_TRANSFER_TWH_PER_YEAR,
    FleetModel,
    JobClass,
    PolicyReport,
    TariffModel,
    global_projection_twh,
)

__all__ = [
    "FleetModel",
    "JobClass",
    "PolicyReport",
    "TariffModel",
    "WORLD_TRANSFER_TWH_PER_YEAR",
    "global_projection_twh",
]
