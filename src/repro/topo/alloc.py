"""Deterministic network-wide max-min allocation (progressive filling).

Each flow registers its demanded rate on every bottleneck along its
path, then a single water level rises over the whole network: every
unfrozen flow's rate grows in proportion to its weight until either
the flow reaches its demand (it freezes demand-limited) or some
bottleneck saturates (every unfrozen flow crossing it freezes at its
weighted share of that hop — its *binding* bottleneck). Capacity a
throttled flow cannot use is automatically available to the flows
that can, so the procedure terminates — in at most one round per
flow — at exactly the network-wide (weighted, demand-capped) max-min
fair allocation.

Everything here is pure and deterministic: flows are processed in
sorted id order, bottlenecks in sorted name order, ties broken by id.
Two calls with equal inputs return bit-equal outputs — the property
the simulator's fast-vs-grid equivalence rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.units import BytesPerSecond

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topo.core import Topology

__all__ = ["FlowDemand", "AllocationResult", "water_fill", "allocate"]

#: Backstop against float noise: progressive filling freezes at
#: least one flow per round, so ``_MAX_ROUNDS`` is never reached on
#: well-formed inputs.
_MAX_ROUNDS = 64


@dataclass(frozen=True)
class FlowDemand:
    """One flow's registration: its route, demanded rate and weight."""

    flow: str
    path: tuple[str, ...]
    #: demanded rate, bytes/s.
    demand: BytesPerSecond
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError(f"flow {self.flow!r} has an empty path")
        if self.demand < 0:
            raise ValueError(f"flow {self.flow!r} demand must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow!r} weight must be > 0")


@dataclass(frozen=True)
class AllocationResult:
    """The fixed point: per-flow rates plus diagnostic structure."""

    #: flow id -> allocated rate (bytes/s), ``min(demand, fair share)``.
    rates: dict[str, BytesPerSecond]
    #: flow id -> registered demand (bytes/s, echoed for congestion
    #: checks).
    demands: dict[str, BytesPerSecond]
    #: flow id -> the bottleneck that capped it, or ``None`` when the
    #: flow got its full demand (demand-limited, not network-limited).
    binding: dict[str, Optional[str]]
    #: bottleneck -> total allocated rate through it (bytes/s).
    bottleneck_load: dict[str, BytesPerSecond]
    #: bottleneck -> flow count registered on it.
    bottleneck_flows: dict[str, int] = field(default_factory=dict)
    #: water-filling rounds until the fixed point.
    rounds: int = 0

    @property
    def congested_flows(self) -> list[str]:
        """Flows that did not get their full demand, sorted."""
        return sorted(
            flow for flow, hop in self.binding.items() if hop is not None
        )

    def utilization(self, topology: "Topology") -> dict[str, float]:
        """Bottleneck -> load / current capacity."""
        return {
            name: load / topology.capacity(name)
            for name, load in sorted(self.bottleneck_load.items())
        }


def water_fill(
    capacity: BytesPerSecond,
    demands: Mapping[str, BytesPerSecond],
    weights: Optional[Mapping[str, float]] = None,
) -> dict[str, BytesPerSecond]:
    """Weighted max-min division of one capacity (bytes/s) among
    demands (bytes/s).

    Progressive filling: flows whose demand is below their weighted
    fair share are frozen at their demand, their unused share is
    returned to the pool, and the remaining flows split it by weight —
    repeated (via one pass in ascending ``demand/weight`` order) until
    every flow is frozen at either its demand or its final share.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if not demands:
        return {}
    if weights is None:
        weights = {flow: 1.0 for flow in demands}
    order = sorted(
        demands, key=lambda flow: (demands[flow] / weights[flow], flow)
    )
    remaining = float(capacity)
    remaining_weight = sum(weights[flow] for flow in order)
    shares: dict[str, float] = {}
    for flow in order:
        fair = remaining * weights[flow] / remaining_weight
        give = demands[flow] if demands[flow] < fair else fair
        shares[flow] = give
        remaining -= give
        remaining_weight -= weights[flow]
        if remaining < 0.0:
            remaining = 0.0
    return {flow: shares[flow] for flow in sorted(shares)}


def allocate(
    topology: "Topology",
    flows: Sequence[FlowDemand],
    *,
    max_rounds: int = _MAX_ROUNDS,
) -> AllocationResult:
    """Progressive filling to the exact network max-min allocation.

    A normalized water level rises round by round. Each round finds
    the next freeze event — the lowest level at which some bottleneck
    saturates (``(capacity - frozen load) / unfrozen weight``) — and
    freezes either every unfrozen flow whose weighted demand sits at
    or below that level (demand-limited, no binding hop) or, when
    none does, every unfrozen flow crossing a saturating hop (frozen
    at its weighted share there; the hop is its *binding* bottleneck,
    the first saturating one along its path). Every round freezes at
    least one flow, so the loop terminates in at most one round per
    flow — ``max_rounds`` is a float-noise backstop, not a
    convergence knob.
    """
    if not flows:
        return AllocationResult(
            rates={}, demands={}, binding={}, bottleneck_load={}, rounds=0
        )
    seen: set[str] = set()
    for flow in flows:
        if flow.flow in seen:
            raise ValueError(f"duplicate flow id {flow.flow!r}")
        seen.add(flow.flow)
    ordered = sorted(flows, key=lambda f: f.flow)
    demands = {f.flow: float(f.demand) for f in ordered}
    weights = {f.flow: float(f.weight) for f in ordered}
    paths = {f.flow: f.path for f in ordered}
    by_bottleneck: dict[str, list[str]] = {}
    for f in ordered:
        for hop in f.path:
            by_bottleneck.setdefault(hop, []).append(f.flow)
    capacities = {
        hop: topology.capacity(hop) for hop in sorted(by_bottleneck)
    }
    hops_sorted = sorted(by_bottleneck)

    rates: dict[str, float] = {}
    binding: dict[str, Optional[str]] = {}
    active = {f.flow for f in ordered}
    frozen_load = {hop: 0.0 for hop in hops_sorted}
    rounds = 0
    while active and rounds < max_rounds:
        rounds += 1
        # Lowest level at which a bottleneck saturates.
        cap_level = None
        for hop in hops_sorted:
            weight = sum(
                weights[flow]
                for flow in by_bottleneck[hop]
                if flow in active
            )
            if weight <= 0.0:
                continue
            level = (capacities[hop] - frozen_load[hop]) / weight
            if level < 0.0:
                level = 0.0
            if cap_level is None or level < cap_level:
                cap_level = level
        if cap_level is None:  # pragma: no cover - every flow has a hop
            break
        # Flows whose demand sits at or below the level freeze first:
        # removing one returns unused share to its hops, so every
        # hop's saturation level can only rise — freezing them all at
        # once is exact, not greedy.
        frozen = [
            flow
            for flow in sorted(active)
            if demands[flow] / weights[flow] <= cap_level
        ]
        if frozen:
            for flow in frozen:
                rates[flow] = demands[flow]
                binding[flow] = None
        else:
            # A bottleneck saturates below every remaining demand:
            # its unfrozen flows freeze at their weighted share of it.
            saturated = {
                hop
                for hop in hops_sorted
                if any(flow in active for flow in by_bottleneck[hop])
                and (
                    capacities[hop] - frozen_load[hop]
                ) / sum(
                    weights[flow]
                    for flow in by_bottleneck[hop]
                    if flow in active
                ) <= cap_level
            }
            for flow in sorted(active):
                for hop in paths[flow]:
                    if hop in saturated:
                        rates[flow] = weights[flow] * cap_level
                        binding[flow] = hop
                        frozen.append(flow)
                        break
        for flow in frozen:
            active.discard(flow)
            for hop in paths[flow]:
                frozen_load[hop] += rates[flow]
    for flow in sorted(active):  # pragma: no cover - max_rounds backstop
        rates[flow] = demands[flow]
        binding[flow] = None

    load = {
        hop: sum(rates[flow] for flow in members)
        for hop, members in sorted(by_bottleneck.items())
    }
    count = {
        hop: len(members) for hop, members in sorted(by_bottleneck.items())
    }
    return AllocationResult(
        rates=rates,
        demands=demands,
        binding=binding,
        bottleneck_load=load,
        bottleneck_flows=count,
        rounds=rounds,
    )
