"""Deterministic network-wide max-min allocation (progressive filling).

Each flow registers its demanded rate on every bottleneck along its
path, then a single water level rises over the whole network: every
unfrozen flow's rate grows in proportion to its weight until either
the flow reaches its demand (it freezes demand-limited) or some
bottleneck saturates (every unfrozen flow crossing it freezes at its
weighted share of that hop — its *binding* bottleneck). Capacity a
throttled flow cannot use is automatically available to the flows
that can, so the procedure terminates — in at most one round per
flow — at exactly the network-wide (weighted, demand-capped) max-min
fair allocation.

Everything here is pure and deterministic: flows are processed in
sorted id order, bottlenecks in sorted name order, demand-limited
freezes in ascending ``demand/weight`` order (ties by id). Two calls
with equal inputs return bit-equal outputs — the property the
simulator's fast-vs-grid equivalence rests on.

Three ways to reach the fixed point, all bit-identical:

* the **scalar** solver (the reference, used below
  :data:`_VECTOR_MIN_FLOWS` flows);
* the **vectorized** solver — per-round level/compare passes as NumPy
  array ops, automatically engaged at ≥ :data:`_VECTOR_MIN_FLOWS`
  unit-weight flows (every array op it uses is elementwise, so each
  float operation is the identical IEEE-754 operation the scalar
  solver performs; the order-sensitive ``frozen_load`` accumulation
  stays a scalar left-fold in the canonical freeze order);
* the **memoized** path — :func:`allocate` keys every call on a
  canonical (flow, path, demand, weight, capacity) signature in a
  module-level LRU, so a repeated round with a frozen busy signature
  returns the previously computed :class:`AllocationResult` object
  itself.

:func:`refill` is the incremental entry point: given the previous
round's result, it re-solves only the connected components of the
flow–bottleneck interference graph touched by changed flows and
splices the untouched components' values straight from the previous
result. Max-min decomposes exactly over those components (a flow's
fixed point only depends on flows it shares a bottleneck with,
transitively), and the canonical freeze order above makes the
per-component arithmetic independent of how *other* components
interleave — so the splice is bit-identical to a from-scratch solve,
not merely close.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, NamedTuple, Optional, Sequence

import numpy as np

from repro.units import BytesPerSecond

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topo.core import Topology

__all__ = [
    "FlowDemand",
    "AllocationResult",
    "AllocCacheInfo",
    "water_fill",
    "allocate",
    "refill",
    "alloc_cache_info",
    "alloc_cache_clear",
    "set_alloc_cache",
]

#: Backstop against float noise: progressive filling freezes at
#: least one flow per round, so ``_MAX_ROUNDS`` is never reached on
#: well-formed inputs.
_MAX_ROUNDS = 64

#: Unit-weight flow sets at least this wide take the vectorized
#: solver; narrower sets (the common per-simulator case of a handful
#: of concurrent jobs) keep the scalar path, whose per-round overhead
#: is lower. Both are bit-equal.
_VECTOR_MIN_FLOWS = 32

#: Allocation results the LRU holds. Each entry is a few dicts over
#: the flow set (~3 KB at fleet-shard flow counts) — small next to the
#: solver cost it saves. Sized so a whole contended 1k-job sharded
#: fleet day (~7k distinct busy signatures) stays resident and an
#: exact repeat day is served from cache end to end.
_CACHE_MAX = 16384


@dataclass(frozen=True)
class FlowDemand:
    """One flow's registration: its route, demanded rate and weight."""

    flow: str
    path: tuple[str, ...]
    #: demanded rate, bytes/s.
    demand: BytesPerSecond
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError(f"flow {self.flow!r} has an empty path")
        if self.demand < 0:
            raise ValueError(f"flow {self.flow!r} demand must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow!r} weight must be > 0")


@dataclass(frozen=True)
class AllocationResult:
    """The fixed point: per-flow rates plus diagnostic structure.

    Equality compares the allocation itself (rates, demands, binding,
    per-bottleneck loads); ``rounds`` is excluded — an incremental
    :func:`refill` reaches the same fixed point in a different number
    of water-filling rounds than a from-scratch solve.
    """

    #: flow id -> allocated rate (bytes/s), ``min(demand, fair share)``.
    rates: dict[str, BytesPerSecond]
    #: flow id -> registered demand (bytes/s, echoed for congestion
    #: checks).
    demands: dict[str, BytesPerSecond]
    #: flow id -> the bottleneck that capped it, or ``None`` when the
    #: flow got its full demand (demand-limited, not network-limited).
    binding: dict[str, Optional[str]]
    #: bottleneck -> total allocated rate through it (bytes/s).
    bottleneck_load: dict[str, BytesPerSecond]
    #: bottleneck -> flow count registered on it.
    bottleneck_flows: dict[str, int] = field(default_factory=dict)
    #: flow id -> the path it registered (kept so :func:`refill` can
    #: localize the hops a departed or re-routed flow touched).
    paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: flow id -> registered weight (echoed for :func:`refill` diffs).
    weights: dict[str, float] = field(default_factory=dict)
    #: bottleneck -> total *demanded* rate registered on it (bytes/s).
    #: Unlike ``bottleneck_load`` this does not saturate at capacity,
    #: so routers can rank hops by offered pressure.
    bottleneck_demand: dict[str, BytesPerSecond] = field(default_factory=dict)
    #: water-filling rounds until the fixed point (diagnostic only).
    rounds: int = field(default=0, compare=False)

    @property
    def congested_flows(self) -> list[str]:
        """Flows that did not get their full demand, sorted."""
        return sorted(
            flow for flow, hop in self.binding.items() if hop is not None
        )

    def utilization(self, topology: "Topology") -> dict[str, float]:
        """Bottleneck -> load / current capacity."""
        return {
            name: load / topology.capacity(name)
            for name, load in sorted(self.bottleneck_load.items())
        }


class AllocCacheInfo(NamedTuple):
    """Allocation-memo traffic snapshot (:func:`alloc_cache_info`)."""

    hits: int
    misses: int
    size: int
    maxsize: int


#: The module-level allocation memo. Keys are exact-value canonical
#: signatures (sorted flow tuples + sorted (hop, capacity) tuples), so
#: a hit returns a bit-identical result by construction — no bucketing,
#: no tolerance.
_CACHE: "OrderedDict[tuple, AllocationResult]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0
_cache_enabled = True


def alloc_cache_info() -> AllocCacheInfo:
    """Current allocation-memo counters and occupancy."""
    return AllocCacheInfo(
        hits=_cache_hits,
        misses=_cache_misses,
        size=len(_CACHE),
        maxsize=_CACHE_MAX,
    )


def alloc_cache_clear() -> None:
    """Drop every memoized allocation and zero the counters."""
    global _cache_hits, _cache_misses
    _CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


def set_alloc_cache(enabled: bool) -> bool:
    """Enable/disable the allocation memo; returns the previous state.

    Disabling makes every :func:`allocate` call solve from scratch —
    the uncached reference the benchmark gates compare against.
    Per-call ``cache=`` arguments override this default either way.
    """
    global _cache_enabled
    previous = _cache_enabled
    _cache_enabled = bool(enabled)
    return previous


def _cache_key(
    topology: "Topology",
    flows: Sequence[FlowDemand],
    max_rounds: int,
) -> tuple:
    flow_key = tuple(
        sorted(
            (f.flow, f.path, float(f.demand), float(f.weight))
            for f in flows
        )
    )
    hops = sorted({hop for f in flows for hop in f.path})
    cap_key = tuple((hop, float(topology.capacity(hop))) for hop in hops)
    return (flow_key, cap_key, max_rounds)


def _validate_unique(flows: Sequence[FlowDemand]) -> None:
    seen: set[str] = set()
    for flow in flows:
        if flow.flow in seen:
            raise ValueError(f"duplicate flow id {flow.flow!r}")
        seen.add(flow.flow)


def water_fill(
    capacity: BytesPerSecond,
    demands: Mapping[str, BytesPerSecond],
    weights: Optional[Mapping[str, float]] = None,
) -> dict[str, BytesPerSecond]:
    """Weighted max-min division of one capacity (bytes/s) among
    demands (bytes/s).

    Progressive filling: flows whose demand is below their weighted
    fair share are frozen at their demand, their unused share is
    returned to the pool, and the remaining flows split it by weight —
    repeated (via one pass in ascending ``demand/weight`` order) until
    every flow is frozen at either its demand or its final share.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if not demands:
        return {}
    if weights is None:
        weights = {flow: 1.0 for flow in demands}
    order = sorted(
        demands, key=lambda flow: (demands[flow] / weights[flow], flow)
    )
    remaining = float(capacity)
    remaining_weight = sum(weights[flow] for flow in order)
    shares: dict[str, float] = {}
    for flow in order:
        fair = remaining * weights[flow] / remaining_weight
        give = demands[flow] if demands[flow] < fair else fair
        shares[flow] = give
        remaining -= give
        remaining_weight -= weights[flow]
        if remaining < 0.0:
            remaining = 0.0
    return {flow: shares[flow] for flow in sorted(shares)}


def _solve_scalar(
    demands: dict[str, float],
    weights: dict[str, float],
    paths: dict[str, tuple[str, ...]],
    by_bottleneck: dict[str, list[str]],
    capacities: dict[str, float],
    max_rounds: int,
) -> tuple[dict[str, float], dict[str, Optional[str]], int]:
    """The reference progressive-filling loop (see :func:`allocate`)."""
    hops_sorted = sorted(by_bottleneck)
    rates: dict[str, float] = {}
    binding: dict[str, Optional[str]] = {}
    active = set(demands)
    frozen_load = {hop: 0.0 for hop in hops_sorted}
    rounds = 0
    while active and rounds < max_rounds:
        rounds += 1
        # Lowest level at which a bottleneck saturates.
        cap_level = None
        for hop in hops_sorted:
            weight = sum(
                weights[flow]
                for flow in by_bottleneck[hop]
                if flow in active
            )
            if weight <= 0.0:
                continue
            level = (capacities[hop] - frozen_load[hop]) / weight
            if level < 0.0:
                level = 0.0
            if cap_level is None or level < cap_level:
                cap_level = level
        if cap_level is None:  # pragma: no cover - every flow has a hop
            break
        # Flows whose demand sits at or below the level freeze first:
        # removing one returns unused share to its hops, so every
        # hop's saturation level can only rise — freezing them all at
        # once is exact, not greedy. The freeze (and hence the
        # ``frozen_load`` accumulation) order is ascending
        # ``demand/weight`` with id tie-breaks: the order the rising
        # level reaches them, which is independent of how the level's
        # discrete rounds partition the batch — the canonical-order
        # property :func:`refill`'s component splicing rests on.
        frozen = sorted(
            (
                flow
                for flow in active
                if demands[flow] / weights[flow] <= cap_level
            ),
            key=lambda flow: (demands[flow] / weights[flow], flow),
        )
        if frozen:
            for flow in frozen:
                rates[flow] = demands[flow]
                binding[flow] = None
        else:
            # A bottleneck saturates below every remaining demand:
            # its unfrozen flows freeze at their weighted share of it.
            saturated = {
                hop
                for hop in hops_sorted
                if any(flow in active for flow in by_bottleneck[hop])
                and (
                    capacities[hop] - frozen_load[hop]
                ) / sum(
                    weights[flow]
                    for flow in by_bottleneck[hop]
                    if flow in active
                ) <= cap_level
            }
            for flow in sorted(active):
                for hop in paths[flow]:
                    if hop in saturated:
                        rates[flow] = weights[flow] * cap_level
                        binding[flow] = hop
                        frozen.append(flow)
                        break
        for flow in frozen:
            active.discard(flow)
            for hop in paths[flow]:
                frozen_load[hop] += rates[flow]
    for flow in sorted(active):  # pragma: no cover - max_rounds backstop
        rates[flow] = demands[flow]
        binding[flow] = None
    return rates, binding, rounds


def _solve_vector(
    names: list[str],
    demands: dict[str, float],
    weights: dict[str, float],
    paths: dict[str, tuple[str, ...]],
    by_bottleneck: dict[str, list[str]],
    capacities: dict[str, float],
    max_rounds: int,
) -> tuple[dict[str, float], dict[str, Optional[str]], int]:
    """Vectorized progressive filling, bit-identical to the scalar
    solver for unit-weight flows.

    Per-round work — the saturation levels, their minimum, and the
    demand-vs-level compare — runs as NumPy elementwise array ops,
    which perform the identical IEEE-754 operation per element the
    scalar loop performs. Everything order-sensitive stays scalar:
    active weights are exact integer counts (unit weights), and
    ``frozen_load`` accumulates by the same left-fold ``+=`` in the
    same canonical freeze order as :func:`_solve_scalar`.
    """
    n = len(names)
    index = {name: i for i, name in enumerate(names)}
    hops_sorted = sorted(by_bottleneck)
    h = len(hops_sorted)
    hop_index = {hop: j for j, hop in enumerate(hops_sorted)}
    members = [
        [index[flow] for flow in by_bottleneck[hop]] for hop in hops_sorted
    ]
    flow_hops = [
        [hop_index[hop] for hop in paths[name]] for name in names
    ]
    demand_list = [demands[name] for name in names]
    weight_list = [weights[name] for name in names]
    demand_arr = np.array(demand_list, dtype=np.float64)
    weight_arr = np.array(weight_list, dtype=np.float64)
    # demand/weight per flow: the same elementwise division the scalar
    # condition computes (weights are 1.0 here, but keep the op).
    dw_arr = demand_arr / weight_arr
    dw_list = dw_arr.tolist()
    # Canonical freeze rank: ascending (demand/weight, id). ``names``
    # is sorted, so the flow index is the id tie-break.
    order = sorted(range(n), key=lambda i: (dw_list[i], i))
    rank = [0] * n
    for r, i in enumerate(order):
        rank[i] = r
    rank_arr = np.array(rank, dtype=np.int64)

    caps_arr = np.array(
        [capacities[hop] for hop in hops_sorted], dtype=np.float64
    )
    frozen_load = [0.0] * h
    active_count = [float(len(m)) for m in members]
    active = np.ones(n, dtype=bool)
    rates = [0.0] * n
    binding: list[Optional[str]] = [None] * n
    rounds = 0
    while bool(active.any()) and rounds < max_rounds:
        rounds += 1
        ac = np.array(active_count, dtype=np.float64)
        fl = np.array(frozen_load, dtype=np.float64)
        live = ac > 0.0
        if not bool(live.any()):  # pragma: no cover - every flow has a hop
            break
        levels = np.full(h, np.inf, dtype=np.float64)
        np.divide(caps_arr - fl, ac, out=levels, where=live)
        np.maximum(levels, 0.0, out=levels)
        cap_level = float(levels[live].min())
        frz = active & (dw_arr <= cap_level)
        if bool(frz.any()):
            batch = np.flatnonzero(frz)
            batch = batch[np.argsort(rank_arr[batch], kind="stable")]
            for i in batch.tolist():
                rates[i] = demand_list[i]
                binding[i] = None
        else:
            saturated = live & (levels <= cap_level)
            sat_hops = np.flatnonzero(saturated).tolist()
            crossing = np.zeros(n, dtype=bool)
            for j in sat_hops:
                for i in members[j]:
                    crossing[i] = True
            crossing &= active
            batch = np.flatnonzero(crossing)  # ascending index = id order
            for i in batch.tolist():
                rates[i] = weight_list[i] * cap_level
                for j in flow_hops[i]:
                    if bool(saturated[j]):
                        binding[i] = hops_sorted[j]
                        break
        for i in batch.tolist():
            active[i] = False
            for j in flow_hops[i]:
                frozen_load[j] += rates[i]
                active_count[j] -= 1.0
    for i in np.flatnonzero(active).tolist():  # pragma: no cover - backstop
        rates[i] = demand_list[i]
        binding[i] = None
    out_rates = {name: rates[i] for i, name in enumerate(names)}
    out_binding = {name: binding[i] for i, name in enumerate(names)}
    return out_rates, out_binding, rounds


def _finalize(
    rates: dict[str, float],
    demands: dict[str, float],
    weights: dict[str, float],
    binding: dict[str, Optional[str]],
    paths: dict[str, tuple[str, ...]],
    by_bottleneck: dict[str, list[str]],
    rounds: int,
) -> AllocationResult:
    load = {
        hop: sum(rates[flow] for flow in members)
        for hop, members in sorted(by_bottleneck.items())
    }
    demand_load = {
        hop: sum(demands[flow] for flow in members)
        for hop, members in sorted(by_bottleneck.items())
    }
    count = {
        hop: len(members) for hop, members in sorted(by_bottleneck.items())
    }
    return AllocationResult(
        rates=rates,
        demands=demands,
        binding=binding,
        bottleneck_load=load,
        bottleneck_flows=count,
        paths=paths,
        weights=weights,
        bottleneck_demand=demand_load,
        rounds=rounds,
    )


def _allocate_fresh(
    topology: "Topology",
    flows: Sequence[FlowDemand],
    max_rounds: int,
    vector: Optional[bool],
) -> AllocationResult:
    ordered = sorted(flows, key=lambda f: f.flow)
    names = [f.flow for f in ordered]
    demands = {f.flow: float(f.demand) for f in ordered}
    weights = {f.flow: float(f.weight) for f in ordered}
    paths = {f.flow: f.path for f in ordered}
    by_bottleneck: dict[str, list[str]] = {}
    for f in ordered:
        for hop in f.path:
            by_bottleneck.setdefault(hop, []).append(f.flow)
    capacities = {
        hop: topology.capacity(hop) for hop in sorted(by_bottleneck)
    }
    unit = all(w == 1.0 for w in weights.values())
    if vector is None:
        vector = unit and len(ordered) >= _VECTOR_MIN_FLOWS
    elif vector and not unit:
        raise ValueError(
            "vector=True requires unit weights (the bit-identity "
            "argument needs exact integer weight sums)"
        )
    if vector:
        rates, binding, rounds = _solve_vector(
            names, demands, weights, paths, by_bottleneck, capacities,
            max_rounds,
        )
    else:
        rates, binding, rounds = _solve_scalar(
            demands, weights, paths, by_bottleneck, capacities, max_rounds
        )
    return _finalize(
        rates, demands, weights, binding, paths, by_bottleneck, rounds
    )


def allocate(
    topology: "Topology",
    flows: Sequence[FlowDemand],
    *,
    max_rounds: int = _MAX_ROUNDS,
    cache: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> AllocationResult:
    """Progressive filling to the exact network max-min allocation.

    A normalized water level rises round by round. Each round finds
    the next freeze event — the lowest level at which some bottleneck
    saturates (``(capacity - frozen load) / unfrozen weight``) — and
    freezes either every unfrozen flow whose weighted demand sits at
    or below that level (demand-limited, no binding hop) or, when
    none does, every unfrozen flow crossing a saturating hop (frozen
    at its weighted share there; the hop is its *binding* bottleneck,
    the first saturating one along its path). Every round freezes at
    least one flow, so the loop terminates in at most one round per
    flow — ``max_rounds`` is a float-noise backstop, not a
    convergence knob.

    ``cache`` overrides the module default (:func:`set_alloc_cache`):
    a hit on the canonical exact-value signature returns the memoized
    :class:`AllocationResult` — bit-identical by construction.
    ``vector`` overrides the automatic ``>= _VECTOR_MIN_FLOWS``
    unit-weight dispatch (``True`` forces the vectorized solver,
    ``False`` forces the scalar reference; both return bit-identical
    results).
    """
    global _cache_hits, _cache_misses
    if not flows:
        return AllocationResult(
            rates={}, demands={}, binding={}, bottleneck_load={}, rounds=0
        )
    _validate_unique(flows)
    use_cache = _cache_enabled if cache is None else cache
    if use_cache:
        key = _cache_key(topology, flows, max_rounds)
        hit = _CACHE.get(key)
        if hit is not None:
            _cache_hits += 1
            _CACHE.move_to_end(key)
            return hit
        _cache_misses += 1
    result = _allocate_fresh(topology, flows, max_rounds, vector)
    if use_cache:
        _CACHE[key] = result
        while len(_CACHE) > _CACHE_MAX:
            _CACHE.popitem(last=False)
    return result


def refill(
    topology: "Topology",
    flows: Sequence[FlowDemand],
    previous: Optional[AllocationResult],
    *,
    changed: Optional[Iterable[str]] = None,
    max_rounds: int = _MAX_ROUNDS,
    cache: Optional[bool] = None,
) -> AllocationResult:
    """Incrementally re-solve after a small change in the flow set.

    Diffs ``flows`` against ``previous`` (joined, departed, or
    demand/path/weight-changed flows; ``changed`` unions extra flow
    ids to force), expands the changes to the connected components of
    the flow–bottleneck interference graph they touch, re-solves only
    those components, and splices every untouched component's rates,
    bindings and per-bottleneck loads straight out of ``previous``.

    Bit-identity contract: the spliced result equals a from-scratch
    :func:`allocate` on the same inputs (``rounds`` excepted — it
    reports the sub-solve only). The caller must guarantee the
    topology's capacities are unchanged since ``previous`` was
    computed — re-solve from scratch after any brownout (the
    simulators key this on ``Topology.version``).
    """
    if previous is None or not previous.demands:
        return allocate(
            topology, flows, max_rounds=max_rounds, cache=cache
        )
    if not flows:
        return AllocationResult(
            rates={}, demands={}, binding={}, bottleneck_load={}, rounds=0
        )
    _validate_unique(flows)
    global _cache_hits, _cache_misses
    use_cache = _cache_enabled if cache is None else cache
    key: Optional[tuple] = None
    if use_cache:
        key = _cache_key(topology, flows, max_rounds)
        hit = _CACHE.get(key)
        if hit is not None:
            _cache_hits += 1
            _CACHE.move_to_end(key)
            return hit
        _cache_misses += 1
    changed_names = set(changed) if changed is not None else set()
    for f in flows:
        prior = previous.demands.get(f.flow)
        if (
            prior is None
            or float(f.demand) != prior
            or f.path != previous.paths.get(f.flow)
            or float(f.weight) != previous.weights.get(f.flow)
        ):
            changed_names.add(f.flow)
    names = {f.flow for f in flows}
    removed = set(previous.demands) - names
    if not changed_names and not removed:
        if use_cache and key is not None:
            _CACHE[key] = previous
            while len(_CACHE) > _CACHE_MAX:
                _CACHE.popitem(last=False)
        return previous
    by_bottleneck: dict[str, list[str]] = {}
    flow_by_name: dict[str, FlowDemand] = {}
    for f in sorted(flows, key=lambda f: f.flow):
        flow_by_name[f.flow] = f
        for hop in f.path:
            by_bottleneck.setdefault(hop, []).append(f.flow)
    # Seed hops: everywhere a changed flow now registers, everywhere
    # it used to register, and everywhere a departed flow registered —
    # load moved on or off all of them.
    seed_hops: set[str] = set()
    for name in changed_names:
        if name in flow_by_name:
            seed_hops.update(flow_by_name[name].path)
        prior_path = previous.paths.get(name)
        if prior_path is not None:
            seed_hops.update(prior_path)
    for name in removed:
        prior_path = previous.paths.get(name)
        if prior_path is not None:
            seed_hops.update(prior_path)
    # Expand to the full connected components: any flow crossing an
    # affected hop is affected, and drags its own hops in.
    affected_hops: set[str] = set()
    affected_flows: set[str] = {
        name for name in changed_names if name in flow_by_name
    }
    frontier = list(seed_hops)
    while frontier:
        hop = frontier.pop()
        if hop in affected_hops:
            continue
        affected_hops.add(hop)
        for name in by_bottleneck.get(hop, ()):
            if name not in affected_flows:
                affected_flows.add(name)
                frontier.extend(flow_by_name[name].path)
    if len(affected_flows) == len(flow_by_name):
        # Everything is reachable from the change: a plain solve (the
        # miss was already counted above; store under the full key).
        full = _allocate_fresh(topology, flows, max_rounds, None)
        if use_cache and key is not None:
            _CACHE[key] = full
            while len(_CACHE) > _CACHE_MAX:
                _CACHE.popitem(last=False)
        return full
    subset = [flow_by_name[name] for name in sorted(affected_flows)]
    sub = (
        allocate(topology, subset, max_rounds=max_rounds, cache=cache)
        if subset
        else None
    )
    rates: dict[str, float] = {}
    demands: dict[str, float] = {}
    binding: dict[str, Optional[str]] = {}
    paths: dict[str, tuple[str, ...]] = {}
    weights: dict[str, float] = {}
    for name in sorted(flow_by_name):
        if sub is not None and name in affected_flows:
            rates[name] = sub.rates[name]
            demands[name] = sub.demands[name]
            binding[name] = sub.binding[name]
            paths[name] = sub.paths[name]
            weights[name] = sub.weights[name]
        else:
            rates[name] = previous.rates[name]
            demands[name] = previous.demands[name]
            binding[name] = previous.binding[name]
            paths[name] = previous.paths[name]
            weights[name] = previous.weights[name]
    load: dict[str, float] = {}
    demand_load: dict[str, float] = {}
    count: dict[str, int] = {}
    for hop in sorted(by_bottleneck):
        if hop in affected_hops and sub is not None:
            load[hop] = sub.bottleneck_load[hop]
            demand_load[hop] = sub.bottleneck_demand[hop]
            count[hop] = sub.bottleneck_flows[hop]
        else:
            load[hop] = previous.bottleneck_load[hop]
            demand_load[hop] = previous.bottleneck_demand[hop]
            count[hop] = previous.bottleneck_flows[hop]
    result = AllocationResult(
        rates=rates,
        demands=demands,
        binding=binding,
        bottleneck_load=load,
        bottleneck_flows=count,
        paths=paths,
        weights=weights,
        bottleneck_demand=demand_load,
        rounds=sub.rounds if sub is not None else 0,
    )
    if use_cache and key is not None:
        _CACHE[key] = result
        while len(_CACHE) > _CACHE_MAX:
            _CACHE.popitem(last=False)
    return result
