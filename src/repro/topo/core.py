"""Topology graphs: named bottlenecks and the paths that cross them.

A :class:`Bottleneck` is one shared capacity — a leaf uplink, a spine
link, an aggregated pod trunk. A :class:`Path` generalizes the
point-to-point :class:`~repro.netsim.link.NetworkPath`: it names the
ordered bottlenecks a flow crosses between two endpoint nodes, while
the transport characteristics (RTT, TCP buffer, congestion knee) stay
on the testbed's ``NetworkPath`` — the topology constrains *capacity*,
the link model constrains *protocol behaviour*.

Capacities are mutable at the :class:`Topology` level only, through
:meth:`Topology.scale_bottleneck` (a chaos brownout on one named link)
and :meth:`Topology.set_global_scale` (a region-wide brownout). Both
follow the fast-path invalidation contract: they are constant between
intervention calls, and the simulators re-read capacities every
allocation round, so a scale change lands on the same grid point in
the fast and grid drivers.

Builders: :func:`single_link` (degenerate one-bottleneck network that
reproduces the plain ``NetworkPath`` byte-identically),
:func:`leaf_spine`, :func:`fat_tree` (aggregated pod model), and the
generic :func:`from_edges`. :func:`build_topology` parses the CLI/spec
syntax (``fat-tree:k=4`` / ``leaf-spine:s=2,l=4,spine=0.5`` /
``single-link``) against a base bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro import units
from repro.netsim.link import NetworkPath
from repro.units import BytesPerSecond

__all__ = [
    "Bottleneck",
    "Path",
    "Topology",
    "single_link",
    "leaf_spine",
    "fat_tree",
    "from_edges",
    "build_topology",
]


@dataclass(frozen=True, slots=True)
class Bottleneck:
    """One shared capacity of the network, in bytes/second."""

    name: str
    capacity: BytesPerSecond

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("bottleneck name must be non-empty")
        if self.capacity <= 0:
            raise ValueError(
                f"bottleneck capacity must be > 0, got {self.capacity}"
            )


@dataclass(frozen=True, slots=True)
class Path:
    """An end-to-end route: the ordered bottlenecks between two nodes.

    Generalizes :class:`~repro.netsim.link.NetworkPath`: where the
    point-to-point model is "one link, one capacity", a topology path
    is "a sequence of shared capacities" — the flow's rate is bounded
    by its allocated share on *every* bottleneck it crosses (min over
    the path; see :func:`repro.topo.alloc.allocate`).
    """

    name: str
    src: str
    dst: str
    bottlenecks: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("path name must be non-empty")
        if not self.bottlenecks:
            raise ValueError(f"path {self.name!r} crosses no bottleneck")
        if len(set(self.bottlenecks)) != len(self.bottlenecks):
            raise ValueError(
                f"path {self.name!r} crosses a bottleneck twice: "
                f"{self.bottlenecks}"
            )


class Topology:
    """A named set of bottlenecks plus the paths that cross them.

    The *specs* (bottleneck base capacities, path membership) are
    immutable after construction; the only mutable state is the
    brownout scaling — per-bottleneck factors plus one global factor —
    which chaos interventions adjust mid-run. ``capacity(name)``
    always returns ``base * per_bottleneck_scale * global_scale``.

    Instances are plain-dict picklable (fleet shards ship one through
    a process pool) and cheap to ``copy.deepcopy`` (the service layer
    builds a fresh one per run so same-seed reruns never see stale
    brownout state).
    """

    def __init__(
        self,
        bottlenecks: Iterable[Bottleneck],
        paths: Iterable[Path],
        *,
        name: str = "custom",
    ) -> None:
        self.name = name
        self._bottlenecks: dict[str, Bottleneck] = {}
        for bottleneck in bottlenecks:
            if bottleneck.name in self._bottlenecks:
                raise ValueError(
                    f"duplicate bottleneck name {bottleneck.name!r}"
                )
            self._bottlenecks[bottleneck.name] = bottleneck
        if not self._bottlenecks:
            raise ValueError("a topology needs at least one bottleneck")
        self._paths: dict[str, Path] = {}
        for path in paths:
            if path.name in self._paths:
                raise ValueError(f"duplicate path name {path.name!r}")
            for hop in path.bottlenecks:
                if hop not in self._bottlenecks:
                    raise ValueError(
                        f"path {path.name!r} crosses unknown bottleneck "
                        f"{hop!r}"
                    )
            self._paths[path.name] = path
        if not self._paths:
            raise ValueError("a topology needs at least one path")
        self._scales: dict[str, float] = {}
        self._global_scale = 1.0
        self._version = 0

    # -- structure ------------------------------------------------------

    @property
    def bottlenecks(self) -> dict[str, Bottleneck]:
        """Name -> bottleneck spec (insertion-ordered copy)."""
        return dict(self._bottlenecks)

    @property
    def paths(self) -> dict[str, Path]:
        """Name -> path spec (insertion-ordered copy)."""
        return dict(self._paths)

    @property
    def nodes(self) -> list[str]:
        """Every endpoint node, sorted."""
        seen: set[str] = set()
        for path in self._paths.values():
            seen.add(path.src)
            seen.add(path.dst)
        return sorted(seen)

    def path(self, name: str) -> Path:
        """Look up one path by name (KeyError lists the known ones)."""
        try:
            return self._paths[name]
        except KeyError:
            raise KeyError(
                f"unknown path {name!r}; known: {sorted(self._paths)}"
            ) from None

    def paths_between(self, src: str, dst: str) -> list[Path]:
        """Candidate routes from ``src`` to ``dst`` (declaration order)."""
        return [
            path
            for path in self._paths.values()
            if path.src == src and path.dst == dst
        ]

    # -- capacities (brownout-scaled) -----------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped by every capacity mutation
        (:meth:`scale_bottleneck`, :meth:`set_global_scale`).

        A cheap staleness signature: anything that memoizes results
        derived from current capacities (the simulators' round-level
        allocation reuse, :func:`repro.topo.alloc.refill` splices)
        records the version it computed against and recomputes from
        scratch when it moves."""
        return self._version

    def capacity(self, name: str) -> BytesPerSecond:
        """Current capacity of a bottleneck, in bytes/s (brownout
        factors applied)."""
        try:
            base = self._bottlenecks[name].capacity
        except KeyError:
            raise KeyError(
                f"unknown bottleneck {name!r}; known: "
                f"{sorted(self._bottlenecks)}"
            ) from None
        return base * self._scales.get(name, 1.0) * self._global_scale

    def path_capacity(self, name: str) -> BytesPerSecond:
        """Current capacity of a path, in bytes/s: min over its
        bottlenecks."""
        path = self.path(name)
        return min(self.capacity(hop) for hop in path.bottlenecks)

    def scale_bottleneck(self, name: str, scale: float) -> BytesPerSecond:
        """Brownout one named bottleneck to ``scale`` of its base
        capacity (``1.0`` restores it). Returns the new capacity in
        bytes/s."""
        if scale <= 0:
            raise ValueError(f"bottleneck scale must be > 0, got {scale}")
        if name not in self._bottlenecks:
            raise KeyError(
                f"unknown bottleneck {name!r}; known: "
                f"{sorted(self._bottlenecks)}"
            )
        self._scales[name] = float(scale)
        self._version += 1
        return self.capacity(name)

    def set_global_scale(self, scale: float) -> None:
        """Region-wide brownout: every bottleneck scaled at once (the
        topology-side mirror of
        :meth:`~repro.netsim.multi.MultiTransferSimulator.set_link_scale`)."""
        if scale <= 0:
            raise ValueError(f"global scale must be > 0, got {scale}")
        self._global_scale = float(scale)
        self._version += 1

    def network_path_for(self, path_name: str, base: NetworkPath) -> NetworkPath:
        """``base`` with its bandwidth clamped to the path's current
        capacity — the point-to-point view of one topology route."""
        capacity = self.path_capacity(path_name)
        return replace(base, bandwidth=min(base.bandwidth, capacity))

    # -- serialization / rendering --------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe structure + current (scaled) capacities."""
        return {
            "name": self.name,
            "bottlenecks": {
                name: {
                    "base_capacity": spec.capacity,
                    "capacity": self.capacity(name),
                }
                for name, spec in self._bottlenecks.items()
            },
            "paths": {
                name: {
                    "src": path.src,
                    "dst": path.dst,
                    "bottlenecks": list(path.bottlenecks),
                }
                for name, path in self._paths.items()
            },
        }

    def describe(self) -> str:
        """One line of topology facts."""
        return (
            f"{self.name}: {len(self._bottlenecks)} bottlenecks, "
            f"{len(self._paths)} paths, {len(self.nodes)} nodes"
        )

    def render(self) -> str:
        """Human-readable bottleneck table."""
        lines = [self.describe()]
        for name in self._bottlenecks:
            crossing = sum(
                1
                for path in self._paths.values()
                if name in path.bottlenecks
            )
            lines.append(
                f"  {name:<14s} {units.to_gbps(self.capacity(name)):7.2f} "
                f"Gbps  ({crossing} paths)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def single_link(
    capacity: BytesPerSecond, *, name: str = "single-link"
) -> Topology:
    """The degenerate network: one bottleneck (``capacity`` bytes/s),
    one path.

    With ``capacity`` set to the testbed link's nominal bandwidth the
    allocator never binds (aggregate TCP goodput is always below the
    nominal rate), so a single-link topology reproduces the plain
    ``NetworkPath`` execution byte-identically — the regression anchor
    for the whole subsystem.
    """
    return Topology(
        [Bottleneck("link", capacity)],
        [Path("src-dst", "src", "dst", ("link",))],
        name=name,
    )


def leaf_spine(
    spines: int,
    leaves: int,
    *,
    leaf_capacity: BytesPerSecond,
    spine_capacity: Optional[BytesPerSecond] = None,
    pair: Optional[tuple[int, int]] = None,
) -> Topology:
    """A two-tier leaf-spine fabric (capacities in bytes/s).

    Each leaf is one bottleneck (its uplink trunk); each spine is one
    bottleneck. A path between two distinct leaves crosses
    ``(leaf_a, spine_j, leaf_b)`` — one path per spine, which is what
    gives the placement policies a real choice.

    ``pair=(a, b)`` restricts the path set to the single leaf pair
    ``leaf{a} -> leaf{b}`` (one direction, one candidate per spine)
    while keeping every bottleneck — the carved per-shard view the
    topology-aware fleet router hands each shard, with the shared
    leaf/spine capacities pre-divided by the shard count through the
    spec's capacity factors.
    """
    if spines < 1:
        raise ValueError("leaf-spine needs at least 1 spine")
    if leaves < 2:
        raise ValueError("leaf-spine needs at least 2 leaves")
    if spine_capacity is None:
        spine_capacity = leaf_capacity
    if pair is not None:
        a, b = pair
        if not (0 <= a < leaves and 0 <= b < leaves) or a == b:
            raise ValueError(
                f"pair must name two distinct leaves in [0, {leaves}), "
                f"got {pair}"
            )
    bottlenecks = [
        Bottleneck(f"leaf{i}", leaf_capacity) for i in range(leaves)
    ] + [Bottleneck(f"spine{j}", spine_capacity) for j in range(spines)]
    paths = [
        Path(
            f"leaf{a}-leaf{b}:spine{j}",
            f"leaf{a}",
            f"leaf{b}",
            (f"leaf{a}", f"spine{j}", f"leaf{b}"),
        )
        for a in range(leaves)
        for b in range(leaves)
        if a != b and (pair is None or (a, b) == pair)
        for j in range(spines)
    ]
    name = f"leaf-spine:s={spines},l={leaves}"
    if pair is not None:
        name += f",pair={pair[0]}-{pair[1]}"
    return Topology(bottlenecks, paths, name=name)


def fat_tree(
    k: int,
    *,
    edge_capacity: BytesPerSecond,
    core_capacity: Optional[BytesPerSecond] = None,
    pair: Optional[tuple[int, int]] = None,
) -> Topology:
    """A k-ary fat-tree at pod granularity (capacities in bytes/s).

    The classic fat-tree has ``k`` pods and ``(k/2)^2`` core switches.
    This builder models each pod's aggregated trunk as one bottleneck
    and each core switch as one bottleneck; a path between two
    distinct pods crosses ``(pod_a, core_c, pod_b)`` — one candidate
    per core, the ECMP fan-out the load balancer chooses over.

    ``pair=(a, b)`` restricts the path set to the single pod pair
    ``pod{a} -> pod{b}`` (one direction, one candidate per core) —
    the fat-tree analogue of the leaf-spine carve (see
    :func:`leaf_spine`).
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree k must be an even integer >= 2")
    if core_capacity is None:
        core_capacity = edge_capacity
    cores = (k // 2) ** 2
    if pair is not None:
        a, b = pair
        if not (0 <= a < k and 0 <= b < k) or a == b:
            raise ValueError(
                f"pair must name two distinct pods in [0, {k}), got {pair}"
            )
    bottlenecks = [
        Bottleneck(f"pod{i}", edge_capacity) for i in range(k)
    ] + [Bottleneck(f"core{c}", core_capacity) for c in range(cores)]
    paths = [
        Path(
            f"pod{a}-pod{b}:core{c}",
            f"pod{a}",
            f"pod{b}",
            (f"pod{a}", f"core{c}", f"pod{b}"),
        )
        for a in range(k)
        for b in range(k)
        if a != b and (pair is None or (a, b) == pair)
        for c in range(cores)
    ]
    name = f"fat-tree:k={k}"
    if pair is not None:
        name += f",pair={pair[0]}-{pair[1]}"
    return Topology(bottlenecks, paths, name=name)


def from_edges(
    edges: Iterable[Union[Bottleneck, tuple[str, BytesPerSecond]]],
    paths: Mapping[str, tuple[str, str, Sequence[str]]],
    *,
    name: str = "custom",
) -> Topology:
    """Generic builder: explicit bottlenecks and path routes.

    ``edges`` is a sequence of :class:`Bottleneck` (or ``(name,
    capacity)`` tuples); ``paths`` maps each path name to ``(src, dst,
    bottleneck_names)``. Unknown bottleneck references raise.
    """
    specs = [
        edge if isinstance(edge, Bottleneck) else Bottleneck(edge[0], edge[1])
        for edge in edges
    ]
    routes = [
        Path(path_name, src, dst, tuple(hops))
        for path_name, (src, dst, hops) in paths.items()
    ]
    return Topology(specs, routes, name=name)


# ----------------------------------------------------------------------
# spec parsing (CLI / scenario syntax)
# ----------------------------------------------------------------------


def _parse_params(body: str) -> dict[str, str]:
    """Split a spec body into raw key/value strings (values convert
    per-key: capacity factors are floats, ``pair`` is ``a-b``)."""
    params: dict[str, str] = {}
    if not body:
        return params
    for item in body.split(","):
        if "=" not in item:
            raise ValueError(
                f"malformed topology parameter {item!r} (expected key=value)"
            )
        key, _, value = item.partition("=")
        params[key.strip()] = value.strip()
    return params


def _float_param(params: dict[str, str], key: str, default: float) -> float:
    value = params.pop(key, None)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"malformed topology parameter value {value!r} for {key!r}"
        ) from None


def _pair_param(params: dict[str, str]) -> Optional[tuple[int, int]]:
    value = params.pop("pair", None)
    if value is None:
        return None
    left, sep, right = value.partition("-")
    try:
        if not sep:
            raise ValueError(value)
        return (int(left), int(right))
    except ValueError:
        raise ValueError(
            f"malformed topology parameter value {value!r} for 'pair' "
            "(expected two endpoint indices as a-b)"
        ) from None


def build_topology(spec: str, *, bandwidth: BytesPerSecond) -> Topology:
    """Build a topology from its spec string against a base bandwidth
    (bytes/s).

    Syntax (capacity factors are fractions of ``bandwidth``)::

        single-link
        leaf-spine:s=2,l=4[,spine=0.5][,leaf=1.0][,pair=0-1]
        fat-tree:k=4[,core=0.5][,edge=1.0][,pair=0-1]

    ``pair=a-b`` carves the fabric down to one endpoint pair's paths
    (all bottlenecks kept) — the per-shard view the topology-aware
    fleet router ships through the process pool.

    The spec string is the picklable, scenario- and CLI-friendly form:
    fleet shards and chaos scripts carry the string and rebuild the
    topology fresh per run.
    """
    if bandwidth <= 0:
        raise ValueError(f"base bandwidth must be > 0, got {bandwidth}")
    kind, _, body = spec.partition(":")
    params = _parse_params(body)
    if kind == "single-link":
        return single_link(bandwidth)
    if kind == "leaf-spine":
        spines = int(_float_param(params, "s", 2))
        leaves = int(_float_param(params, "l", 4))
        leaf_cap = _float_param(params, "leaf", 1.0) * bandwidth
        spine_cap = _float_param(params, "spine", 1.0) * bandwidth
        pair = _pair_param(params)
        if params:
            raise ValueError(
                f"unknown leaf-spine parameters: {sorted(params)}"
            )
        return leaf_spine(
            spines, leaves, leaf_capacity=leaf_cap,
            spine_capacity=spine_cap, pair=pair,
        )
    if kind == "fat-tree":
        k = int(_float_param(params, "k", 4))
        edge_cap = _float_param(params, "edge", 1.0) * bandwidth
        core_cap = _float_param(params, "core", 1.0) * bandwidth
        pair = _pair_param(params)
        if params:
            raise ValueError(
                f"unknown fat-tree parameters: {sorted(params)}"
            )
        return fat_tree(
            k, edge_capacity=edge_cap, core_capacity=core_cap, pair=pair
        )
    raise ValueError(
        f"unknown topology spec {spec!r}; known kinds: "
        "single-link, leaf-spine, fat-tree"
    )
