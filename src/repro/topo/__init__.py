"""Multi-bottleneck network topologies with contention-aware placement.

The paper's testbeds are point-to-point links; this package grows them
into small networks. A :class:`Topology` is a set of named
:class:`Bottleneck` capacities plus the :class:`Path`\\ s that cross
them; :func:`repro.topo.alloc.allocate` divides each bottleneck's
capacity among the flows registered on it (weighted max-min, iterated
to a fixed point — the psim mechanism); and
:class:`repro.topo.placement.Placer` chooses which path each admitted
job takes (least-congested, ECMP-hash, random-of-k).

:class:`~repro.netsim.multi.MultiTransferSimulator` consumes all three:
with a topology attached, coupled engines draw their per-round rate
constraints from the topology-wide allocation instead of a private
link. See DESIGN.md §5h.
"""

from repro.topo.alloc import (
    AllocationResult,
    AllocCacheInfo,
    FlowDemand,
    alloc_cache_clear,
    alloc_cache_info,
    allocate,
    refill,
    set_alloc_cache,
    water_fill,
)
from repro.topo.core import (
    Bottleneck,
    Path,
    Topology,
    build_topology,
    fat_tree,
    from_edges,
    leaf_spine,
    single_link,
)
from repro.topo.placement import PLACEMENT_POLICIES, Placer

__all__ = [
    "AllocCacheInfo",
    "AllocationResult",
    "Bottleneck",
    "FlowDemand",
    "PLACEMENT_POLICIES",
    "Path",
    "Placer",
    "Topology",
    "alloc_cache_clear",
    "alloc_cache_info",
    "allocate",
    "build_topology",
    "fat_tree",
    "from_edges",
    "leaf_spine",
    "refill",
    "set_alloc_cache",
    "single_link",
    "water_fill",
]
