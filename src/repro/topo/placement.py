"""Placement scheduling: which route each admitted job takes.

A :class:`Placer` tracks how many active flows cross each bottleneck
and chooses a (source node, destination node, path) triple per
admitted job. Three policies:

* ``least-congested`` — the path whose most-loaded bottleneck (after
  placing this flow) is lightest, relative to capacity; ties by path
  name. The informed baseline.
* ``ecmp-hash`` — a stable CRC32 hash of the job name over the
  candidate list (the same hash the fleet's ``tenant-hash`` routing
  uses), load-blind but stateless and reproducible.
* ``random-k`` — draw ``k`` seeded random candidates, keep the least
  congested of them ("power of two choices"); load-aware but only
  over the sample.

Placement happens once per job at admission and is released at
completion, in the same order in the fast and grid service drivers,
so a fixed seed gives identical placements in both — the determinism
contract the fast-vs-grid gates enforce.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from repro.topo.core import Path, Topology

__all__ = ["PLACEMENT_POLICIES", "Placer"]

#: Known placement policies, in documentation order.
PLACEMENT_POLICIES = ("least-congested", "ecmp-hash", "random-k")


def _stable_hash(name: str) -> int:
    """Process-independent hash (CRC32, like the fleet router's)."""
    return zlib.crc32(name.encode("utf-8"))


class Placer:
    """Chooses and tracks one route per active flow."""

    def __init__(
        self,
        topology: Topology,
        policy: str = "least-congested",
        *,
        seed: int = 0,
        k: int = 2,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> None:
        """``src``/``dst`` optionally pin the endpoint pair; by default
        every path in the topology is a candidate — the placer chooses
        the endpoints along with the route."""
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; known: "
                f"{', '.join(PLACEMENT_POLICIES)}"
            )
        if k < 1:
            raise ValueError("random-k sample size must be >= 1")
        self.topology = topology
        self.policy = policy
        self.k = k
        self._rng = np.random.default_rng(seed)
        if src is not None or dst is not None:
            if src is None or dst is None:
                raise ValueError("pin both src and dst, or neither")
            candidates = topology.paths_between(src, dst)
        else:
            candidates = list(topology.paths.values())
        if not candidates:
            raise ValueError("no candidate paths to place flows on")
        #: Sorted by name so every policy sees one canonical order.
        self._candidates = sorted(candidates, key=lambda p: p.name)
        #: bottleneck -> active flows crossing it.
        self._load: dict[str, int] = {}
        self.placements = 0

    # -- congestion metric ----------------------------------------------

    def congestion(self, path: Path) -> float:
        """The path's worst bottleneck occupancy if one more flow were
        placed on it: ``(active_flows + 1) / capacity`` maxed over the
        hops. Capacity-relative, so a half-speed spine carrying the
        same flow count reads as twice as congested."""
        worst = 0.0
        for hop in path.bottlenecks:
            score = (self._load.get(hop, 0) + 1) / self.topology.capacity(hop)
            if score > worst:
                worst = score
        return worst

    def loads(self) -> dict[str, int]:
        """Bottleneck -> active flow count (sorted copy)."""
        return {name: self._load[name] for name in sorted(self._load)}

    # -- placement lifecycle --------------------------------------------

    def _least_congested(self, candidates: list[Path]) -> Path:
        return min(candidates, key=lambda p: (self.congestion(p), p.name))

    def place(self, job: str) -> Path:
        """Choose a route for ``job`` and register its load."""
        if self.policy == "least-congested":
            path = self._least_congested(self._candidates)
        elif self.policy == "ecmp-hash":
            path = self._candidates[
                _stable_hash(job) % len(self._candidates)
            ]
        else:  # random-k
            k = min(self.k, len(self._candidates))
            picks = self._rng.choice(len(self._candidates), size=k,
                                     replace=False)
            sample = [self._candidates[int(i)] for i in sorted(picks)]
            path = self._least_congested(sample)
        for hop in path.bottlenecks:
            self._load[hop] = self._load.get(hop, 0) + 1
        self.placements += 1
        return path

    def release(self, path: Path) -> None:
        """Unregister a completed flow's load."""
        for hop in path.bottlenecks:
            current = self._load.get(hop, 0) - 1
            if current > 0:
                self._load[hop] = current
            else:
                self._load.pop(hop, None)
