"""Chaos & SLO harness: seeded fault scenarios for the service layer.

Scripts a day of bad weather — link brownouts, server crash storms,
tariff spikes, flash crowds, background-traffic surges — replays it
deterministically against :class:`~repro.service.simulate.ServiceSimulator`
or :class:`~repro.service.fleet.FleetSimulator`, and judges the
resulting report against per-scenario SLO budgets (burn-rate oracle).
See DESIGN.md §5g and ``repro chaos --help``.
"""

from repro.chaos.actions import (
    AmbientTraffic,
    ChannelCut,
    LinkScale,
    ServerOutage,
    TariffSwap,
)
from repro.chaos.orchestrator import (
    ChaosResult,
    pack_to_json,
    run_pack,
    run_scenario,
    strip_wall,
)
from repro.chaos.scenarios import (
    SCENARIO_PRESETS,
    ScenarioScript,
    scenario_by_name,
)
from repro.chaos.slo import (
    SLO_METRICS,
    SLOBudget,
    SLOCheck,
    SLORule,
    SLOVerdict,
)

__all__ = [
    # actions
    "LinkScale", "AmbientTraffic", "ServerOutage", "ChannelCut", "TariffSwap",
    # scenarios
    "ScenarioScript", "SCENARIO_PRESETS", "scenario_by_name",
    # SLO oracle
    "SLO_METRICS", "SLORule", "SLOCheck", "SLOBudget", "SLOVerdict",
    # orchestrator
    "ChaosResult", "run_scenario", "run_pack", "pack_to_json", "strip_wall",
]
