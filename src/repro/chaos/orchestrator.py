"""Chaos orchestrator: replay a scenario against the service layer.

:func:`run_scenario` builds the base workload, merges the scenario's
extra arrivals, runs one service (or fleet) day with the scenario's
interventions injected at their scripted times, and hands the finished
report to the scenario's SLO oracle. The run uses
``on_timeout="report"`` — a scenario harsh enough to strand work past
``max_time`` produces an honestly-truncated report (unfinished jobs
counted, percentiles ``n/a``) and an SLO verdict over it, never a
crash.

:func:`run_pack` crosses scenarios with policies — the CI smoke matrix
— and :func:`strip_wall` removes the wall-clock fields
(``wall_s``/``jobs_per_sec``/``jobs_per_day``) that sit outside the
determinism contract, so two same-seed packs compare byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

from repro.chaos.scenarios import (
    SCENARIO_PRESETS,
    ScenarioScript,
    scenario_by_name,
)
from repro.chaos.slo import SLOVerdict
from repro.obs.observer import Observer
from repro.service.fleet import FleetReport, FleetSimulator
from repro.service.requests import workload_by_name
from repro.service.scheduler import DeferralPolicy, policy_by_name
from repro.service.simulate import ServiceReport, ServiceSimulator
from repro.service.tariff import TariffTrace
from repro.testbeds import Testbed
from repro.units import Seconds

__all__ = [
    "ChaosResult", "run_scenario", "run_pack", "pack_to_json", "strip_wall",
]

#: Report fields measuring the real machine, not the simulation —
#: outside the determinism contract (see ``repro.service.fleet``).
_WALL_KEYS = frozenset({"wall_s", "jobs_per_sec", "jobs_per_day"})


def strip_wall(payload: Any) -> Any:
    """``payload`` with every wall-clock field recursively removed."""
    if isinstance(payload, dict):
        return {
            key: strip_wall(value)
            for key, value in payload.items()
            if key not in _WALL_KEYS
        }
    if isinstance(payload, list):
        return [strip_wall(item) for item in payload]
    return payload


@dataclass(frozen=True)
class ChaosResult:
    """One (scenario, policy) cell: the day's report plus the SLO
    verdict over it."""

    scenario: ScenarioScript
    report: Union[ServiceReport, FleetReport]
    verdict: SLOVerdict
    seed: int

    @property
    def policy(self) -> str:
        return self.report.policy

    @property
    def passed(self) -> bool:
        return self.verdict.passed

    def to_dict(self, *, include_jobs: bool = False) -> dict:
        """The cell as a JSON-safe dict. ``include_jobs=False`` (the
        default) drops the per-job rows — the pack artifact stays
        small while totals, per-tenant and verdict survive."""
        report = self.report.to_dict()
        if not include_jobs:
            report.pop("job_results", None)
        return {
            "scenario": self.scenario.name,
            "description": self.scenario.description,
            "policy": self.policy,
            "seed": self.seed,
            "actions": [
                {"time": action.time, "kind": action.kind}
                for action in self.scenario.actions
            ],
            "extra_requests": len(self.scenario.extra_requests),
            "verdict": self.verdict.to_dict(),
            "report": report,
        }

    def render(self) -> str:
        """Human-readable block: scenario header, report, verdict."""
        lines = [
            f"scenario {self.scenario.name} ({self.scenario.description})",
            self.report.render(),
            self.verdict.render(),
        ]
        return "\n".join(lines)


def _resolve_scenario(
    scenario: Union[str, ScenarioScript],
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int,
) -> ScenarioScript:
    if isinstance(scenario, ScenarioScript):
        return scenario
    return scenario_by_name(
        scenario, day_s=day_s, seed=seed, tariff=tariff, testbed=testbed,
        jobs=jobs,
    )


def run_scenario(
    scenario: Union[str, ScenarioScript],
    *,
    testbed: Testbed,
    policy: Union[str, DeferralPolicy],
    tariff: TariffTrace,
    jobs: int = 24,
    day_s: Seconds = 3600.0,
    seed: int = 7,
    workload: str = "steady",
    max_concurrent_jobs: int = 4,
    max_channels: int = 4,
    shards: int = 1,
    workers: Optional[int] = 1,
    fast: bool = True,
    observer: Optional[Observer] = None,
    max_time: Optional[Seconds] = None,
    dataset_pool: Optional[int] = None,
    topology: Optional[str] = None,
    placement: str = "least-congested",
    placement_seed: int = 0,
) -> ChaosResult:
    """Run one scenario under one policy and judge it.

    ``shards=1`` runs a single :class:`ServiceSimulator`; ``shards>1``
    a :class:`FleetSimulator` (the scenario's interventions replay on
    every shard — shared weather). ``max_time`` defaults to eight
    scenario days; hitting it truncates honestly rather than raising.

    ``topology`` defaults from the script: a scenario that pins one
    (e.g. ``spine-congestion``) runs topology-backed without the
    caller asking, so its targeted faults always have their named
    bottleneck to hit. ``placement`` picks the routing policy judged
    under that weather.
    """
    if isinstance(policy, str):
        policy = policy_by_name(policy)
    script = _resolve_scenario(
        scenario, day_s=day_s, seed=seed, tariff=tariff, testbed=testbed,
        jobs=jobs,
    )
    if topology is None:
        topology = script.topology
    base = workload_by_name(
        workload, jobs, day_s=day_s, seed=seed,
        size_scale=day_s / 86400.0, dataset_pool=dataset_pool,
    )
    requests = sorted(
        [*base, *script.extra_requests],
        key=lambda r: (r.submit_time, r.name),
    )
    if max_time is None:
        max_time = 8.0 * day_s
    if shards <= 1:
        simulator: Union[ServiceSimulator, FleetSimulator] = ServiceSimulator(
            testbed, policy=policy, tariff=tariff,
            max_concurrent_jobs=max_concurrent_jobs,
            max_channels=max_channels, observer=observer, fast=fast,
            topology=topology, placement=placement,
            placement_seed=placement_seed,
        )
    else:
        simulator = FleetSimulator(
            testbed, policy=policy, tariff=tariff, shards=shards,
            max_concurrent_jobs=max_concurrent_jobs,
            max_channels=max_channels, observer=observer, fast=fast,
            workers=workers,
            topology=topology, placement=placement,
            placement_seed=placement_seed,
        )
    report = simulator.run(
        requests, max_time=max_time, interventions=script.actions,
        on_timeout="report",
    )
    verdict = script.slo.evaluate(
        report, observer=observer, time=report.makespan_s
    )
    return ChaosResult(scenario=script, report=report, verdict=verdict,
                       seed=seed)


def run_pack(
    *,
    testbed: Testbed,
    tariff: TariffTrace,
    scenarios: Optional[Sequence[Union[str, ScenarioScript]]] = None,
    policies: Sequence[Union[str, DeferralPolicy]] = ("run-now",),
    **config: Any,
) -> list[ChaosResult]:
    """Cross every scenario with every policy (the CI smoke matrix).

    ``config`` is forwarded to :func:`run_scenario` unchanged, so one
    call pins jobs/day/seed/shards for the whole pack.
    """
    if scenarios is None:
        scenarios = sorted(SCENARIO_PRESETS)
    results = []
    for scenario in scenarios:
        for policy in policies:
            results.append(
                run_scenario(
                    scenario, testbed=testbed, policy=policy, tariff=tariff,
                    **config,
                )
            )
    return results


def pack_to_json(results: Sequence[ChaosResult], **dumps_kwargs: Any) -> str:
    """The pack as a JSON document (wall-clock fields stripped, so
    same-seed packs are byte-identical)."""
    payload = {
        "results": [strip_wall(result.to_dict()) for result in results],
        "passed": all(result.passed for result in results),
    }
    return json.dumps(payload, **dumps_kwargs)
