"""SLO oracle: burn-rate budgets evaluated against a day's report.

A :class:`SLORule` names one service-level metric and its budget (the
worst value the operator tolerates for the scenario); an
:class:`SLOBudget` bundles the rules a scenario must hold under fault.
:meth:`SLOBudget.evaluate` reads the metrics off a finished
:class:`~repro.service.simulate.ServiceReport` or
:class:`~repro.service.fleet.FleetReport` (duck-typed — both expose
the same aggregate surface) and returns an :class:`SLOVerdict` with a
per-rule burn rate ``value / budget``: under 1.0 the rule holds, over
it the budget is burnt.

Unmeasurable metrics fail loudly: a ``None`` percentile (nothing
finished) or a cost-per-GB over zero bytes is an *infinite* burn, not
a pass — a day in which no job completed must never satisfy a latency
budget. This mirrors the ``_percentile`` empty-input contract
(``None``, not ``0.0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import units
from repro.obs.observer import Observer
from repro.units import Seconds

__all__ = ["SLO_METRICS", "SLORule", "SLOCheck", "SLOBudget", "SLOVerdict"]


def _jobs_total(report: Any) -> int:
    """Submitted-job count for either report flavor (FleetReport has
    ``jobs_total``; ServiceReport carries the job list itself)."""
    total = getattr(report, "jobs_total", None)
    if total is not None:
        return int(total)
    return len(report.jobs)


def _miss_rate(report: Any) -> Optional[float]:
    return float(report.deadline_miss_rate)


def _p95_slowdown(report: Any) -> Optional[float]:
    value = report.p95_slowdown
    return None if value is None else float(value)


def _cost_per_gb(report: Any) -> Optional[float]:
    if report.total_bytes <= 0:
        return None
    return float(report.total_cost_usd) / units.to_GB(report.total_bytes)


def _unfinished_rate(report: Any) -> Optional[float]:
    total = _jobs_total(report)
    if total == 0:
        return None
    return report.unfinished_jobs / total


def _mean_queue_wait(report: Any) -> Optional[float]:
    return float(report.mean_queue_wait_s)


#: metric name -> (extractor, unit label). The oracle's whole metric
#: vocabulary; ``SLORule`` rejects anything else at construction.
SLO_METRICS = {
    "miss_rate": (_miss_rate, "fraction"),
    "p95_slowdown": (_p95_slowdown, "x"),
    "cost_per_gb": (_cost_per_gb, "$/GB"),
    "unfinished_rate": (_unfinished_rate, "fraction"),
    "mean_queue_wait_s": (_mean_queue_wait, "s"),
}


@dataclass(frozen=True)
class SLORule:
    """One budgeted metric: the scenario holds while
    ``metric <= budget``."""

    metric: str
    budget: float

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; "
                f"known: {sorted(SLO_METRICS)}"
            )
        if self.budget <= 0:
            raise ValueError("SLO budget must be > 0")

    def check(self, report: Any) -> "SLOCheck":
        """Measure the metric on ``report`` and compute its burn."""
        extractor, _unit = SLO_METRICS[self.metric]
        value = extractor(report)
        burn = math.inf if value is None else value / self.budget
        return SLOCheck(
            metric=self.metric, value=value, budget=self.budget, burn=burn,
            passed=burn <= 1.0,
        )


@dataclass(frozen=True)
class SLOCheck:
    """One rule's measured outcome."""

    metric: str
    value: Optional[float]
    budget: float
    burn: float
    passed: bool

    def to_dict(self) -> dict:
        """JSON-safe dict; an infinite burn serializes as ``None``."""
        return {
            "metric": self.metric,
            "value": self.value,
            "budget": self.budget,
            "burn": None if math.isinf(self.burn) else self.burn,
            "passed": self.passed,
        }

    def render(self) -> str:
        """One human-readable line: value / budget (burn) ok|BREACH."""
        value = "n/a" if self.value is None else f"{self.value:.4g}"
        burn = "inf" if math.isinf(self.burn) else f"{self.burn:.2f}"
        state = "ok" if self.passed else "BREACH"
        return (
            f"{self.metric}: {value} / budget {self.budget:.4g} "
            f"(burn {burn}x) {state}"
        )


@dataclass(frozen=True)
class SLOBudget:
    """The rule set one scenario must hold."""

    name: str
    rules: tuple[SLORule, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("an SLO budget needs at least one rule")
        metrics = [rule.metric for rule in self.rules]
        if len(set(metrics)) != len(metrics):
            raise ValueError("duplicate metric in SLO budget")

    def evaluate(
        self,
        report: Any,
        *,
        observer: Optional[Observer] = None,
        time: Seconds = 0.0,
    ) -> "SLOVerdict":
        """Check every rule against ``report``; breaches are mirrored
        to ``observer.slo_breach`` (``chaos.slo_breaches.*`` counters +
        ``slo_breach`` events) when an observer is attached."""
        checks = tuple(rule.check(report) for rule in self.rules)
        for check in checks:
            if not check.passed and observer is not None:
                observer.slo_breach(
                    time, check.metric, check.value, check.budget, check.burn
                )
        return SLOVerdict(budget=self.name, checks=checks)


@dataclass(frozen=True)
class SLOVerdict:
    """Every rule's outcome plus the scenario-level pass/fail."""

    budget: str
    checks: tuple[SLOCheck, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def breaches(self) -> tuple[SLOCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    @property
    def max_burn(self) -> float:
        """The hottest rule's burn (how close — or far past — the
        worst budget the day ran)."""
        return max(check.burn for check in self.checks)

    def to_dict(self) -> dict:
        """JSON-safe dict; an infinite max burn serializes as ``None``."""
        return {
            "budget": self.budget,
            "passed": self.passed,
            "max_burn": None if math.isinf(self.max_burn) else self.max_burn,
            "checks": [check.to_dict() for check in self.checks],
        }

    def render(self) -> str:
        """Multi-line human-readable verdict with one line per rule."""
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"SLO {self.budget}: {verdict}"]
        lines.extend(f"  {check.render()}" for check in self.checks)
        return "\n".join(lines)
