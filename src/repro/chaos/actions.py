"""Chaos interventions: timed, picklable fault injections.

Each action is a frozen dataclass satisfying the
:class:`repro.service.simulate.Intervention` protocol: a ``time`` (the
simulated second at which it fires), a ``kind`` label (the
``fault_injected`` event's ``fault`` field), and an
``apply(service, sim)`` method that mutates the running
:class:`~repro.service.simulate.ServiceSimulator` /
:class:`~repro.netsim.multi.MultiTransferSimulator` pair and returns a
JSON-safe detail dict.

The fast-path invalidation contract (see ``repro.netsim.multi``)
governs every action here: each one only mutates state that is
*constant between interventions* — link scale, ambient stream count,
server availability windows, the tariff object — and the service
drivers never macro-step or idle-jump across an intervention time.
Both the event-horizon fast path and the fixed-``dt`` grid loop
therefore observe each fault at the identical grid point, keeping
their reports bit-consistent under injection.

Actions must stay picklable (no closures, no open handles):
:class:`~repro.service.fleet.FleetSimulator` replays the same
intervention list on every shard, shipping it through a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.netsim.multi import MultiTransferSimulator
from repro.service.tariff import TariffTrace
from repro.units import Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.simulate import ServiceSimulator

__all__ = [
    "LinkScale",
    "AmbientTraffic",
    "ServerOutage",
    "ChannelCut",
    "TariffSwap",
]


def _check_time(time: Seconds) -> None:
    if time < 0:
        raise ValueError("intervention time must be >= 0")


@dataclass(frozen=True)
class LinkScale:
    """Scale the shared bottleneck link to ``scale`` of its nominal
    capacity (a brownout below 1.0, an upgrade above). ``scale=1.0``
    restores the nominal link.

    With ``bottleneck`` set, only that named hop of the simulator's
    topology is scaled (a targeted brownout — e.g. one dimmed spine) —
    which requires the run to be topology-backed
    (``ServiceSimulator(topology=...)``)."""

    time: Seconds
    scale: float
    bottleneck: Optional[str] = None
    kind: ClassVar[str] = "link_scale"

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.scale <= 0:
            raise ValueError("link scale must be > 0")

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict:
        """Apply the new scale to the whole path, or to one hop."""
        if self.bottleneck is not None:
            capacity = sim.scale_bottleneck(self.bottleneck, self.scale)
            return {
                "scale": self.scale,
                "bottleneck": self.bottleneck,
                "capacity": capacity,
            }
        sim.set_link_scale(self.scale)
        return {"scale": self.scale}


@dataclass(frozen=True)
class AmbientTraffic:
    """Add ``streams`` phantom competing streams to the shared link
    (a background-traffic surge); ``streams=0`` ends the surge."""

    time: Seconds
    streams: float
    kind: ClassVar[str] = "ambient_traffic"

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.streams < 0:
            raise ValueError("ambient streams must be >= 0")

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict:
        """Install the phantom stream count on the shared link."""
        sim.set_ambient_streams(self.streams)
        return {"streams": self.streams}


@dataclass(frozen=True)
class ServerOutage:
    """Crash transfer server ``index`` on ``side`` for ``downtime``
    seconds. Running jobs lose that server's channels and reconnect on
    survivors; jobs admitted during the window inherit the remaining
    outage. Refuses to take down a side's last server."""

    time: Seconds
    side: str
    index: int
    downtime: Seconds
    restart_files: bool = False
    kind: ClassVar[str] = "server_outage"

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        if self.index < 0:
            raise ValueError("server index must be >= 0")
        if self.downtime <= 0:
            raise ValueError("downtime must be > 0")

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict:
        """Crash the server and report how many channels it took down."""
        failed = sim.inject_server_failure(
            self.side, self.index, downtime=self.downtime,
            restart_files=self.restart_files,
        )
        return {
            "side": self.side, "index": self.index,
            "downtime_s": self.downtime, "channels_failed": failed,
        }


@dataclass(frozen=True)
class ChannelCut:
    """Kill up to ``per_job`` open channels of every running job (a
    transport reset storm). With ``restart_file=False`` the in-flight
    file keeps its transferred bytes and resumes mid-file."""

    time: Seconds
    per_job: int = 1
    restart_file: bool = False
    kind: ClassVar[str] = "channel_cut"

    def __post_init__(self) -> None:
        _check_time(self.time)
        if self.per_job < 1:
            raise ValueError("per_job must be >= 1")

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict:
        """Cut channels across running jobs; returns the count cut."""
        failed = sim.inject_channel_failures(
            per_job=self.per_job, restart_file=self.restart_file
        )
        return {"per_job": self.per_job, "channels_failed": failed}


@dataclass(frozen=True)
class TariffSwap:
    """Replace the service's tariff with ``trace`` from this instant
    on (a price/carbon spike, or its restoration).

    Already-running jobs are re-priced from the swap forward — the
    service integrates cost over plateaus as it goes — while the
    deferral policy sees the new schedule on its next decision.
    """

    time: Seconds
    trace: TariffTrace
    kind: ClassVar[str] = "tariff_swap"

    def __post_init__(self) -> None:
        _check_time(self.time)

    def apply(
        self, service: "ServiceSimulator", sim: MultiTransferSimulator
    ) -> dict:
        """Swap the service's tariff object for ``trace``."""
        service.tariff = self.trace
        return {"tariff": self.trace.name}
