"""Seeded chaos scenario scripts.

A :class:`ScenarioScript` is a declarative fault timeline: a tuple of
:mod:`~repro.chaos.actions` interventions, optional extra workload
(flash-crowd arrivals), and the :class:`~repro.chaos.slo.SLOBudget`
the day must hold under that weather. Scripts are *pure data* — built
once from ``(day_s, seed, tariff, testbed)`` with a
``numpy.random.default_rng(seed)`` stream, then replayed identically
by every simulator flavor (fast or grid, inline or process-pool
fleet) — which is what makes the chaos suite deterministic: same
scenario + seed + policy ⇒ byte-identical report.

Six scenario families ship as presets (:data:`SCENARIO_PRESETS`):

* ``brownout`` — the shared link sags to 35% capacity mid-morning and
  recovers in the afternoon.
* ``crash-storm`` — a burst of transfer-server crashes with timed
  recovery (on single-server testbeds, where a side's last server can
  never be taken down, the storm manifests as transport resets —
  channel cuts — instead).
* ``tariff-spike`` — a grid emergency: spot price 3x / carbon 2x for
  a third of the day, then restoration of the original schedule.
* ``flash-crowd`` — a seeded burst of extra ``flash``-tenant arrivals
  compressed into a 5%-of-day window at the worst possible time.
* ``traffic-surge`` — heavy ambient background traffic (phantom
  competing streams) through the middle of the day.
* ``spine-congestion`` — two tenants contend across one shared spine
  of a pinned leaf-spine topology; the spine alone browns out to 50%
  mid-day (a targeted ``LinkScale(bottleneck="spine0")``).

All timings are fractions of ``day_s``, so the same scenario stresses
a 10-minute smoke day and a full 86400 s day identically in shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.chaos.actions import (
    AmbientTraffic,
    ChannelCut,
    LinkScale,
    ServerOutage,
    TariffSwap,
)
from repro.chaos.slo import SLOBudget, SLORule
from repro.service.requests import TransferRequest, poisson_workload
from repro.service.simulate import Intervention
from repro.service.tariff import TariffTrace
from repro.testbeds import Testbed
from repro.units import Seconds

__all__ = [
    "ScenarioScript",
    "brownout",
    "crash_storm",
    "tariff_spike",
    "flash_crowd",
    "traffic_surge",
    "spine_congestion",
    "SCENARIO_PRESETS",
    "scenario_by_name",
]


@dataclass(frozen=True)
class ScenarioScript:
    """One replayable chaos timeline plus its SLO budget."""

    name: str
    description: str
    actions: tuple[Intervention, ...]
    slo: SLOBudget
    #: Extra arrivals merged into the base workload (flash crowds).
    extra_requests: tuple[TransferRequest, ...] = field(default_factory=tuple)
    #: Topology spec the scenario expects (``None`` = the classic
    #: point-to-point path). Runners default their ``topology``
    #: argument from this, so a spine-targeted fault always has a
    #: spine to hit.
    topology: str | None = None

    def __post_init__(self) -> None:
        times = [action.time for action in self.actions]
        if times != sorted(times):
            raise ValueError("scenario actions must be time-sorted")


def brownout(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Link sags to 35% capacity for ~30% of the day."""
    rng = np.random.default_rng(seed)
    start = float(rng.uniform(0.20, 0.30)) * day_s
    end = start + 0.30 * day_s
    return ScenarioScript(
        name="brownout",
        description=(
            "shared link at 35% capacity from "
            f"t={start:.0f}s to t={end:.0f}s"
        ),
        actions=(
            LinkScale(time=start, scale=0.35),
            LinkScale(time=end, scale=1.0),
        ),
        slo=SLOBudget(
            name="brownout",
            rules=(
                SLORule("p95_slowdown", 40.0),
                SLORule("unfinished_rate", 0.25),
            ),
        ),
    )


def crash_storm(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Three seeded server crashes (timed recovery) across the
    morning; degrades to channel-cut storms where a side has only one
    server (the harness refuses to take down a side's last server)."""
    rng = np.random.default_rng(seed)
    times = sorted(float(t) for t in rng.uniform(0.15, 0.60, size=3) * day_s)
    downtime = 0.08 * day_s
    counts = {
        "src": testbed.source.server_count,
        "dst": testbed.destination.server_count,
    }
    actions: list[Intervention] = []
    for at in times:
        side = str(rng.choice(["src", "dst"]))
        if counts[side] >= 2:
            index = int(rng.integers(0, counts[side]))
            actions.append(
                ServerOutage(time=at, side=side, index=index,
                             downtime=downtime)
            )
        else:
            actions.append(ChannelCut(time=at, per_job=1))
    return ScenarioScript(
        name="crash-storm",
        description=(
            f"3 server crashes ({downtime:.0f}s recovery each) between "
            f"t={times[0]:.0f}s and t={times[-1]:.0f}s"
        ),
        actions=tuple(actions),
        slo=SLOBudget(
            name="crash-storm",
            rules=(
                SLORule("miss_rate", 0.60),
                SLORule("unfinished_rate", 0.25),
            ),
        ),
    )


def tariff_spike(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Grid emergency: price 3x / carbon 2x for a third of the day,
    then the original schedule is restored."""
    rng = np.random.default_rng(seed)
    start = float(rng.uniform(0.25, 0.40)) * day_s
    end = start + day_s / 3.0
    spiked = tariff.scaled(price_factor=3.0, carbon_factor=2.0)
    return ScenarioScript(
        name="tariff-spike",
        description=(
            f"price x3 / carbon x2 from t={start:.0f}s to t={end:.0f}s"
        ),
        actions=(
            TariffSwap(time=start, trace=spiked),
            TariffSwap(time=end, trace=tariff),
        ),
        slo=SLOBudget(
            name="tariff-spike",
            rules=(
                SLORule("cost_per_gb", 10.0),
                SLORule("miss_rate", 0.50),
            ),
        ),
    )


def flash_crowd(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """A seeded burst of extra ``flash``-tenant arrivals — one quarter
    of the base job count — compressed into a 5%-of-day window."""
    rng = np.random.default_rng(seed)
    n_extra = max(4, jobs // 4)
    window = 0.05 * day_s
    start = float(rng.uniform(0.35, 0.55)) * day_s
    burst = poisson_workload(
        n_extra, day_s=window, seed=seed + 104729, size_scale=day_s / 86400.0
    )
    extras = tuple(
        replace(
            request,
            name=f"flash-{i:03d}",
            tenant="flash",
            submit_time=request.submit_time + start,
            deadline=(
                None if request.deadline is None
                else request.deadline + start
            ),
        )
        for i, request in enumerate(burst)
    )
    return ScenarioScript(
        name="flash-crowd",
        description=(
            f"{n_extra} extra arrivals in a {window:.0f}s window at "
            f"t={start:.0f}s"
        ),
        actions=(),
        slo=SLOBudget(
            name="flash-crowd",
            rules=(
                SLORule("mean_queue_wait_s", 0.5 * day_s),
                SLORule("unfinished_rate", 0.30),
            ),
        ),
        extra_requests=extras,
    )


def traffic_surge(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Heavy ambient background traffic (phantom competing streams)
    through the middle 40% of the day."""
    rng = np.random.default_rng(seed)
    start = float(rng.uniform(0.25, 0.35)) * day_s
    end = start + 0.40 * day_s
    streams = float(rng.integers(16, 33))
    return ScenarioScript(
        name="traffic-surge",
        description=(
            f"{streams:.0f} ambient competing streams from "
            f"t={start:.0f}s to t={end:.0f}s"
        ),
        actions=(
            AmbientTraffic(time=start, streams=streams),
            AmbientTraffic(time=end, streams=0.0),
        ),
        slo=SLOBudget(
            name="traffic-surge",
            rules=(
                SLORule("p95_slowdown", 60.0),
                SLORule("miss_rate", 0.60),
            ),
        ),
    )


def spine_congestion(
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Two tenants contend across one shared spine, which browns out
    mid-day.

    The scenario pins a leaf-spine topology with a single spine at 70%
    of the path bandwidth, adds seeded ``east``/``west`` tenant bursts
    on top of the base workload (every leaf-to-leaf route crosses the
    spine), then scales *only* the spine to half capacity for ~30% of
    the day — the targeted form of :class:`~repro.chaos.actions.LinkScale`
    that the placement policies get judged under.
    """
    rng = np.random.default_rng(seed)
    start = float(rng.uniform(0.30, 0.40)) * day_s
    end = start + 0.30 * day_s
    n_extra = max(4, jobs // 3)
    extras: list[TransferRequest] = []
    for tenant, offset in (("east", 7919), ("west", 6131)):
        burst = poisson_workload(
            n_extra, day_s=0.70 * day_s, seed=seed + offset,
            size_scale=day_s / 86400.0,
        )
        extras.extend(
            replace(
                request,
                name=f"{tenant}-{i:03d}",
                tenant=tenant,
                submit_time=request.submit_time + 0.05 * day_s,
                deadline=(
                    None if request.deadline is None
                    else request.deadline + 0.05 * day_s
                ),
            )
            for i, request in enumerate(burst)
        )
    extras.sort(key=lambda r: (r.submit_time, r.name))
    return ScenarioScript(
        name="spine-congestion",
        description=(
            f"spine0 at 50% capacity from t={start:.0f}s to t={end:.0f}s "
            f"with 2x{n_extra} east/west tenant arrivals contending"
        ),
        actions=(
            LinkScale(time=start, scale=0.5, bottleneck="spine0"),
            LinkScale(time=end, scale=1.0, bottleneck="spine0"),
        ),
        slo=SLOBudget(
            name="spine-congestion",
            rules=(
                SLORule("p95_slowdown", 80.0),
                SLORule("unfinished_rate", 0.30),
            ),
        ),
        extra_requests=tuple(extras),
        topology="leaf-spine:s=1,l=2,spine=0.7",
    )


#: Name -> factory. All share the signature
#: ``(*, day_s, seed, tariff, testbed, jobs)``.
SCENARIO_PRESETS: dict[str, Callable[..., ScenarioScript]] = {
    "brownout": brownout,
    "crash-storm": crash_storm,
    "tariff-spike": tariff_spike,
    "flash-crowd": flash_crowd,
    "traffic-surge": traffic_surge,
    "spine-congestion": spine_congestion,
}


def scenario_by_name(
    name: str,
    *,
    day_s: Seconds,
    seed: int,
    tariff: TariffTrace,
    testbed: Testbed,
    jobs: int = 24,
) -> ScenarioScript:
    """Build a preset scenario by name for one run configuration."""
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_PRESETS)}"
        ) from None
    return factory(day_s=day_s, seed=seed, tariff=tariff, testbed=testbed,
                   jobs=jobs)
