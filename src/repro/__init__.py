"""repro — Energy-aware data transfer algorithms.

A full reproduction of *"Energy-Aware Data Transfer Algorithms"*
(Alan, Arslan & Kosar, SC 2015): the MinE, HTEE and SLAEE algorithms,
the GUC / GO / SC / ProMC baselines, the end-system power models
(Eq. 1-3), the network-device energy models (Section 4), and the
XSEDE / FutureGrid / DIDCLAB evaluation environments — all running on
a deterministic fluid-flow transfer simulator.

Quickstart::

    from repro import HTEEAlgorithm, XSEDE
    outcome = HTEEAlgorithm().run(XSEDE, XSEDE.dataset(), max_channels=12)
    print(outcome.summary())
"""

from repro import units
from repro.core import (
    BruteForceAlgorithm,
    GlobusOnlineAlgorithm,
    GucAlgorithm,
    HTEEAlgorithm,
    MinEAlgorithm,
    PartitionPolicy,
    ProMCAlgorithm,
    SLAEEAlgorithm,
    SingleChunkAlgorithm,
    TransferOutcome,
    partition_files,
)
from repro.datasets import Dataset, FileInfo, paper_dataset_10g, paper_dataset_1g
from repro.netsim import NetworkPath, TransferEngine, TransferParams
from repro.power import CpuTdpPowerModel, EnergyMeter, FineGrainedPowerModel, PowercapReader
from repro.testbeds import ALL_TESTBEDS, DIDCLAB, FUTUREGRID, XSEDE, Testbed

__version__ = "1.0.0"

__all__ = [
    "ALL_TESTBEDS",
    "BruteForceAlgorithm",
    "CpuTdpPowerModel",
    "DIDCLAB",
    "Dataset",
    "EnergyMeter",
    "FUTUREGRID",
    "FileInfo",
    "FineGrainedPowerModel",
    "GlobusOnlineAlgorithm",
    "GucAlgorithm",
    "HTEEAlgorithm",
    "MinEAlgorithm",
    "NetworkPath",
    "PartitionPolicy",
    "PowercapReader",
    "ProMCAlgorithm",
    "SLAEEAlgorithm",
    "SingleChunkAlgorithm",
    "Testbed",
    "TransferEngine",
    "TransferOutcome",
    "TransferParams",
    "XSEDE",
    "__version__",
    "paper_dataset_10g",
    "paper_dataset_1g",
    "partition_files",
    "units",
]
