"""Unit conventions and converters.

Everything inside :mod:`repro` uses a single internal unit system:

* **sizes** in bytes (``int`` or ``float``),
* **time** in seconds,
* **data rates** in bytes per second,
* **power** in watts, **energy** in joules.

Networking literature (and the paper) quotes link speeds in megabits per
second, file sizes in MB/GB, and round-trip times in milliseconds. The
helpers here are the only sanctioned way to cross between those surface
units and the internal ones, so unit bugs cannot creep in silently.
"""

from __future__ import annotations

from typing import TypeAlias

__all__ = [
    "Seconds",
    "Bytes",
    "BytesPerSecond",
    "Watts",
    "Joules",
    "KB",
    "MB",
    "GB",
    "TB",
    "kbps",
    "mbps",
    "gbps",
    "ms",
    "to_ms",
    "to_mbps",
    "to_gbps",
    "to_MB",
    "to_GB",
    "microjoules",
    "to_microjoules",
    "bdp_bytes",
    "kilojoules",
]

# ----------------------------------------------------------------------
# typed units
# ----------------------------------------------------------------------
#
# Documentation-grade aliases for the internal unit system. They are
# plain ``float`` at runtime (zero cost, no wrapping), but annotating
# signatures with them makes every quantity's unit machine-visible:
# ``def run(self, max_time: Seconds) -> None`` cannot be misread as
# milliseconds, and mypy keeps the annotations from drifting into
# nonsense. The lint rule RPL008 enforces the matching docstring
# contract for unit-suffixed parameter names.

#: Time in seconds (the only internal time unit).
Seconds: TypeAlias = float
#: Sizes in bytes (decimal multiples; see :data:`MB`).
Bytes: TypeAlias = float
#: Data rates in bytes per second (never bits — convert at the edge).
BytesPerSecond: TypeAlias = float
#: Power in watts.
Watts: TypeAlias = float
#: Energy in joules.
Joules: TypeAlias = float

#: Decimal byte multipliers (the networking convention the paper uses).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

_BITS_PER_BYTE = 8


def kbps(value: float) -> float:
    """Kilobits/second -> bytes/second."""
    return value * 1_000 / _BITS_PER_BYTE


def mbps(value: float) -> float:
    """Megabits/second -> bytes/second."""
    return value * 1_000_000 / _BITS_PER_BYTE


def gbps(value: float) -> float:
    """Gigabits/second -> bytes/second."""
    return value * 1_000_000_000 / _BITS_PER_BYTE


def ms(value: float) -> Seconds:
    """Milliseconds -> seconds."""
    return value / 1_000


def to_ms(time_s: Seconds) -> float:
    """Seconds -> milliseconds (for reporting RTTs and latencies)."""
    return time_s * 1_000


def to_mbps(rate_bytes_per_s: float) -> float:
    """Bytes/second -> megabits/second (for reporting)."""
    return rate_bytes_per_s * _BITS_PER_BYTE / 1_000_000


def to_gbps(rate_bytes_per_s: float) -> float:
    """Bytes/second -> gigabits/second (for reporting)."""
    return rate_bytes_per_s * _BITS_PER_BYTE / 1_000_000_000


def to_MB(size_bytes: float) -> float:
    """Bytes -> megabytes."""
    return size_bytes / MB


def to_GB(size_bytes: float) -> float:
    """Bytes -> gigabytes."""
    return size_bytes / GB


def microjoules(energy_uj: float) -> Joules:
    """Microjoules -> joules (RAPL counters tick in microjoules)."""
    return energy_uj / 1_000_000


def to_microjoules(energy_joules: Joules) -> float:
    """Joules -> microjoules (to feed simulated RAPL counters)."""
    return energy_joules * 1_000_000


def bdp_bytes(bandwidth_bytes_per_s: BytesPerSecond, rtt_s: Seconds) -> Bytes:
    """Bandwidth-delay product in bytes, from a link rate in bytes per
    second and a round-trip time in seconds.

    The BDP is the pivotal quantity in every parameter formula of the
    paper: chunk boundaries, pipelining, and parallelism levels are all
    expressed relative to it.
    """
    if bandwidth_bytes_per_s < 0:
        raise ValueError(f"bandwidth must be >= 0, got {bandwidth_bytes_per_s}")
    if rtt_s < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt_s}")
    return bandwidth_bytes_per_s * rtt_s


def kilojoules(energy_joules: float) -> float:
    """Joules -> kilojoules (for reporting)."""
    return energy_joules / 1_000
