"""Unit conventions and converters.

Everything inside :mod:`repro` uses a single internal unit system:

* **sizes** in bytes (``int`` or ``float``),
* **time** in seconds,
* **data rates** in bytes per second,
* **power** in watts, **energy** in joules.

Networking literature (and the paper) quotes link speeds in megabits per
second, file sizes in MB/GB, and round-trip times in milliseconds. The
helpers here are the only sanctioned way to cross between those surface
units and the internal ones, so unit bugs cannot creep in silently.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "kbps",
    "mbps",
    "gbps",
    "ms",
    "to_mbps",
    "to_gbps",
    "to_MB",
    "to_GB",
    "bdp_bytes",
    "kilojoules",
]

#: Decimal byte multipliers (the networking convention the paper uses).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

_BITS_PER_BYTE = 8


def kbps(value: float) -> float:
    """Kilobits/second -> bytes/second."""
    return value * 1_000 / _BITS_PER_BYTE


def mbps(value: float) -> float:
    """Megabits/second -> bytes/second."""
    return value * 1_000_000 / _BITS_PER_BYTE


def gbps(value: float) -> float:
    """Gigabits/second -> bytes/second."""
    return value * 1_000_000_000 / _BITS_PER_BYTE


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value / 1_000


def to_mbps(rate_bytes_per_s: float) -> float:
    """Bytes/second -> megabits/second (for reporting)."""
    return rate_bytes_per_s * _BITS_PER_BYTE / 1_000_000


def to_gbps(rate_bytes_per_s: float) -> float:
    """Bytes/second -> gigabits/second (for reporting)."""
    return rate_bytes_per_s * _BITS_PER_BYTE / 1_000_000_000


def to_MB(size_bytes: float) -> float:
    """Bytes -> megabytes."""
    return size_bytes / MB


def to_GB(size_bytes: float) -> float:
    """Bytes -> gigabytes."""
    return size_bytes / GB


def bdp_bytes(bandwidth_bytes_per_s: float, rtt_s: float) -> float:
    """Bandwidth-delay product in bytes.

    The BDP is the pivotal quantity in every parameter formula of the
    paper: chunk boundaries, pipelining, and parallelism levels are all
    expressed relative to it.
    """
    if bandwidth_bytes_per_s < 0:
        raise ValueError(f"bandwidth must be >= 0, got {bandwidth_bytes_per_s}")
    if rtt_s < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt_s}")
    return bandwidth_bytes_per_s * rtt_s


def kilojoules(energy_joules: float) -> float:
    """Joules -> kilojoules (for reporting)."""
    return energy_joules / 1_000
